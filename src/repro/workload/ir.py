"""Workload IR: dependency DAGs of communication phases.

A :class:`Workload` is a directed acyclic graph of :class:`Phase` nodes.
Each phase carries a *traffic shape* (who talks to whom, at chip
granularity), a *message volume* (flits injected per participating node
during the phase) and an optional *compute* delay; edges (``after``) are
happens-after constraints.  The closed-loop driver
(:mod:`repro.workload.driver`) releases a phase's injections only once
every upstream phase has drained — the dependency-driven behaviour the
open-loop steady-state patterns of :mod:`repro.traffic` cannot express.

Phase patterns are chip-granular, matching the collective analysis the
paper applies to its ring AllReduce traffic (Sec. V-B5):

``("shift", k)``
    every participating chip at ring position ``i`` streams to the chip
    at position ``(i + k) mod n``; on-chip node ``j`` talks to its
    counterpart ``j`` on the destination chip.
``("all_to_all",)``
    every chip spreads its volume round-robin over all other chips
    (MoE dispatch / DLRM embedding exchange shape).
``("none",)``
    a pure compute phase: no packets, only the ``compute`` delay.

Builders for the common DNN-training collectives live in the
:data:`WORKLOADS` registry; recorded or synthetic traces round-trip
through :mod:`repro.workload.trace` (``repro.workload-trace/v1``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Sequence, Tuple

from ..engine.spec import suggest

__all__ = [
    "Phase",
    "Workload",
    "WORKLOADS",
    "register_workload",
    "build_workload",
    "list_workloads",
    "workload_descriptions",
]

#: patterns a phase may carry, by tag.
_PATTERNS = ("shift", "all_to_all", "none")


@dataclass(frozen=True)
class Phase:
    """One communication (or compute) phase of a workload DAG."""

    name: str
    #: ("shift", k) | ("all_to_all",) | ("none",)
    pattern: Tuple = ("none",)
    #: flits injected per participating node during this phase.
    volume: int = 0
    #: names of phases that must drain before this one starts.
    after: Tuple[str, ...] = ()
    #: compute cycles between upstream drain and first injection.
    compute: int = 0

    def __post_init__(self):
        if not self.name:
            raise ValueError("phase name must be non-empty")
        if not self.pattern or self.pattern[0] not in _PATTERNS:
            raise ValueError(
                f"phase {self.name!r}: unknown pattern {self.pattern!r} "
                f"(expected one of {_PATTERNS})"
            )
        tag = self.pattern[0]
        if tag == "shift":
            if len(self.pattern) != 2 or int(self.pattern[1]) == 0:
                raise ValueError(
                    f"phase {self.name!r}: shift pattern needs a non-zero "
                    f"chip offset, got {self.pattern!r}"
                )
        elif len(self.pattern) != 1:
            raise ValueError(
                f"phase {self.name!r}: pattern {tag!r} takes no arguments"
            )
        if self.volume < 0:
            raise ValueError(f"phase {self.name!r}: volume must be >= 0")
        if tag != "none" and self.volume == 0:
            raise ValueError(
                f"phase {self.name!r}: communication phases need volume >= 1"
            )
        if self.compute < 0:
            raise ValueError(f"phase {self.name!r}: compute must be >= 0")

    @property
    def communicates(self) -> bool:
        return self.pattern[0] != "none"


@dataclass(frozen=True)
class Workload:
    """A validated DAG of phases (see module docstring)."""

    name: str
    phases: Tuple[Phase, ...] = ()
    #: topological order of phase indices (computed at construction).
    _order: Tuple[int, ...] = field(init=False, repr=False, compare=False)

    def __post_init__(self):
        if not self.name:
            raise ValueError("workload name must be non-empty")
        if not self.phases:
            raise ValueError(f"workload {self.name!r} has no phases")
        names = [p.name for p in self.phases]
        index = {}
        for i, nm in enumerate(names):
            if nm in index:
                raise ValueError(
                    f"workload {self.name!r}: duplicate phase name {nm!r}"
                )
            index[nm] = i
        for p in self.phases:
            for dep in p.after:
                if dep not in index:
                    raise ValueError(
                        f"workload {self.name!r}: phase {p.name!r} waits on "
                        f"unknown phase {dep!r}{suggest(dep, names)}"
                    )
                if dep == p.name:
                    raise ValueError(
                        f"workload {self.name!r}: phase {p.name!r} cannot "
                        "wait on itself"
                    )
        # Kahn topological sort doubles as the cycle check.
        indeg = [len(p.after) for p in self.phases]
        out: Dict[int, List[int]] = {i: [] for i in range(len(self.phases))}
        for i, p in enumerate(self.phases):
            for dep in p.after:
                out[index[dep]].append(i)
        ready = [i for i, d in enumerate(indeg) if d == 0]
        order: List[int] = []
        while ready:
            i = ready.pop(0)
            order.append(i)
            for j in out[i]:
                indeg[j] -= 1
                if indeg[j] == 0:
                    ready.append(j)
        if len(order) != len(self.phases):
            stuck = sorted(names[i] for i, d in enumerate(indeg) if d > 0)
            raise ValueError(
                f"workload {self.name!r}: dependency cycle through "
                f"{', '.join(stuck)}"
            )
        object.__setattr__(self, "_order", tuple(order))

    @property
    def num_phases(self) -> int:
        return len(self.phases)

    def topo_order(self) -> Tuple[int, ...]:
        """Phase indices in a valid execution order."""
        return self._order

    def phase_index(self) -> Dict[str, int]:
        return {p.name: i for i, p in enumerate(self.phases)}

    def total_volume(self) -> int:
        """Flits per participating node summed over all phases."""
        return sum(p.volume for p in self.phases if p.communicates)

    def describe(self) -> str:
        comm = sum(1 for p in self.phases if p.communicates)
        return (
            f"{self.name}: {self.num_phases} phase(s), {comm} "
            f"communicating, {self.total_volume()} flit(s)/node total"
        )


# ----------------------------------------------------------------------
# builder registry
# ----------------------------------------------------------------------
#: name -> (builder, description).  Builders have the signature
#: ``builder(num_chips, **opts) -> Workload``.
WORKLOADS: Dict[str, Tuple[Callable, str]] = {}


def register_workload(name: str, description: str):
    def deco(fn):
        WORKLOADS[name] = (fn, description)
        return fn

    return deco


def list_workloads() -> List[str]:
    return sorted(WORKLOADS)


def workload_descriptions() -> Dict[str, str]:
    return {name: WORKLOADS[name][1] for name in list_workloads()}


def _per_step(volume: int, steps: int) -> int:
    return max(1, int(math.ceil(volume / steps)))


@register_workload(
    "ring_allreduce",
    "2(n-1) chained neighbour-shift phases moving volume/n flits each "
    "(reduce-scatter then all-gather)",
)
def ring_allreduce(num_chips: int, *, volume: int = 64) -> Workload:
    _check_chips("ring_allreduce", num_chips)
    steps = 2 * (num_chips - 1)
    per = _per_step(volume, num_chips)
    phases = []
    prev = ()
    for s in range(steps):
        kind = "rs" if s < num_chips - 1 else "ag"
        name = f"{kind}{s if s < num_chips - 1 else s - (num_chips - 1)}"
        phases.append(
            Phase(name=name, pattern=("shift", 1), volume=per, after=prev)
        )
        prev = (name,)
    return Workload(name="ring_allreduce", phases=tuple(phases))


@register_workload(
    "tree_allreduce",
    "log2(n) doubling-shift reduce phases up the tree, mirrored for the "
    "broadcast back down",
)
def tree_allreduce(num_chips: int, *, volume: int = 64) -> Workload:
    _check_chips("tree_allreduce", num_chips)
    levels = max(1, int(math.ceil(math.log2(num_chips))))
    per = _per_step(volume, levels)
    phases = []
    prev = ()
    for lvl in range(levels):
        name = f"reduce{lvl}"
        shift = (2 ** lvl) % num_chips or 1
        phases.append(
            Phase(name=name, pattern=("shift", shift), volume=per, after=prev)
        )
        prev = (name,)
    for lvl in reversed(range(levels)):
        name = f"bcast{lvl}"
        shift = (2 ** lvl) % num_chips or 1
        phases.append(
            Phase(name=name, pattern=("shift", shift), volume=per, after=prev)
        )
        prev = (name,)
    return Workload(name="tree_allreduce", phases=tuple(phases))


@register_workload(
    "hierarchical_allreduce",
    "ring reduce within chip groups, a long-stride exchange across "
    "groups, then a ring broadcast within groups",
)
def hierarchical_allreduce(
    num_chips: int, *, volume: int = 64, group: int = 0
) -> Workload:
    _check_chips("hierarchical_allreduce", num_chips)
    if group <= 0:
        group = max(2, int(math.sqrt(num_chips)))
    group = min(group, num_chips)
    local_steps = max(1, group - 1)
    per_local = _per_step(volume, 2 * group)
    per_global = _per_step(volume, max(2, num_chips // group))
    phases = []
    prev = ()
    for s in range(local_steps):
        name = f"local_rs{s}"
        phases.append(
            Phase(name=name, pattern=("shift", 1), volume=per_local,
                  after=prev)
        )
        prev = (name,)
    stride = group % num_chips or 1
    phases.append(
        Phase(name="global_ex", pattern=("shift", stride),
              volume=per_global, after=prev)
    )
    prev = ("global_ex",)
    for s in range(local_steps):
        name = f"local_ag{s}"
        phases.append(
            Phase(name=name, pattern=("shift", 1), volume=per_local,
                  after=prev)
        )
        prev = (name,)
    return Workload(name="hierarchical_allreduce", phases=tuple(phases))


@register_workload(
    "all_to_all",
    "MoE/DLRM-style exchange: an all-to-all dispatch, an expert-compute "
    "gap, then an all-to-all combine",
)
def all_to_all(
    num_chips: int, *, volume: int = 64, compute: int = 64
) -> Workload:
    _check_chips("all_to_all", num_chips)
    return Workload(
        name="all_to_all",
        phases=(
            Phase(name="dispatch", pattern=("all_to_all",), volume=volume),
            Phase(name="expert", pattern=("none",), compute=compute,
                  after=("dispatch",)),
            Phase(name="combine", pattern=("all_to_all",), volume=volume,
                  after=("expert",)),
        ),
    )


@register_workload(
    "pipeline",
    "stage x microbatch p2p grid: activation (s,b) waits on (s-1,b) and "
    "(s,b-1) — the 1F pipeline-parallel dependency frontier",
)
def pipeline(
    num_chips: int,
    *,
    volume: int = 32,
    stages: int = 0,
    microbatches: int = 4,
    compute: int = 16,
) -> Workload:
    _check_chips("pipeline", num_chips)
    if stages <= 0:
        stages = min(num_chips, 4)
    stages = min(stages, num_chips)
    if microbatches < 1:
        raise ValueError("pipeline needs microbatches >= 1")
    phases = []
    for s in range(stages):
        for b in range(microbatches):
            after = []
            if s > 0:
                after.append(f"s{s - 1}b{b}")
            if b > 0:
                after.append(f"s{s}b{b - 1}")
            phases.append(
                Phase(
                    name=f"s{s}b{b}",
                    pattern=("shift", 1),
                    volume=volume,
                    after=tuple(after),
                    compute=compute,
                )
            )
    return Workload(name="pipeline", phases=tuple(phases))


def _check_chips(name: str, num_chips: int) -> None:
    if num_chips < 2:
        raise ValueError(
            f"workload {name!r} needs >= 2 participating chips, "
            f"got {num_chips}"
        )


def build_workload(
    name: str, opts: Mapping = None, *, num_chips: int
) -> Workload:
    """Instantiate a registered workload (or a ``trace``) over
    ``num_chips`` participating chips.

    ``opts`` are the keyword arguments of the builder (an
    ``ExperimentSpec.workload_opts`` mapping); the special name
    ``trace`` expects ``opts["trace"]`` to hold a
    ``repro.workload-trace/v1`` JSON document.
    """
    opts = dict(opts or {})
    if name == "trace":
        from .trace import workload_loads

        text = opts.pop("trace", None)
        if not isinstance(text, str) or not text:
            raise ValueError(
                "workload 'trace' needs workload_opts={'trace': <JSON "
                "document in repro.workload-trace/v1 format>}"
            )
        if opts:
            raise ValueError(
                f"workload 'trace' got unexpected option(s): "
                f"{', '.join(sorted(opts))}"
            )
        return workload_loads(text)
    if name not in WORKLOADS:
        raise ValueError(
            f"unknown workload {name!r}"
            + suggest(name, list(WORKLOADS) + ["trace"])
        )
    builder, _ = WORKLOADS[name]
    try:
        return builder(num_chips, **opts)
    except TypeError as exc:
        raise ValueError(f"workload {name!r}: {exc}") from None
