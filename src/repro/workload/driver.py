"""Closed-loop phase scheduler driving the simulator cores.

Open-loop runs pre-sample every packet start into an
:class:`~repro.network.schedule.InjectionSchedule`.  Closed-loop runs
instead carry a :class:`PhasePlan`: the plan owns the event arrays the
cores walk, watches per-phase completion counts through a
``packet_done`` callback at the tail-flit ejection sites, and releases
a phase's injections only once every upstream phase has drained (plus
the phase's ``compute`` delay) — the dependency-driven behaviour of
real training traffic.

Mechanics, shared by :class:`~repro.network.simcore.ArrayCore` and
:class:`~repro.network.refcore.ReferenceCore` so their closed-loop runs
stay bit-identical:

* every phase's event *template* (per-node packet offsets and
  chip-counterpart destinations) is computed at plan construction, so
  no traffic RNG is consumed at runtime — the cores' stdlib RNG streams
  only see route draws, in the same order;
* packet ids equal event-consumption order (the plan never drops an
  event at injection time), so ``ev_phase[pid]`` maps a delivered
  packet back to its phase;
* released events are merged into the tail of the event arrays (never
  before the consumption pointer) with a stable sort, keeping the
  arrays cycle-ordered;
* dependents are released at ``t_done + 1``, so a core that matches
  events with strict cycle equality (the reference core) never misses
  a release materialised at the end of cycle ``t_done``.

The native core declines closed-loop runs and falls back to the array
core's Python loop — mirroring the ``dest_batch = None`` decline idiom
— because the C kernel has no per-cycle callback surface.

Faults: when the traffic is a
:class:`~repro.faults.traffic.FaultMaskedTraffic`, events whose source
is dead, or whose destination is dead or unreachable, are *masked* at
plan build (dropped and counted per phase), exactly like the open-loop
``dest(...) is None`` mask.  A phase keeps its ring structure over the
healthy chip list, so degraded completion times stay comparable.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Tuple

from ..network.params import SimParams
from .ir import Workload

__all__ = [
    "PhasePlan",
    "run_closed_loop",
    "participating_chips",
    "workload_for_traffic",
]


def participating_chips(traffic):
    """Ordered chip positions (and their scope nodes) a workload runs
    over, from the *base* traffic pattern's scope.

    Returns ``(index, chip_positions, chip_scope_nodes)`` where
    ``chip_positions`` are :class:`~repro.traffic.base.ChipIndex`
    positions in first-appearance scope order and ``chip_scope_nodes``
    maps each position to its scope nodes.  The base pattern (not the
    fault-masked wrapper) defines the set, so the ring structure is the
    same for healthy and degraded runs — dead endpoints are masked per
    event instead.
    """
    base = getattr(traffic, "base", traffic)
    index = base.index
    positions: List[int] = []
    nodes: Dict[int, List[int]] = {}
    for nid in base.active_nodes():
        ci, _ = index.node_pos[nid]
        if ci not in nodes:
            nodes[ci] = []
            positions.append(ci)
        nodes[ci].append(nid)
    return index, positions, nodes


class PhasePlan:
    """Runtime state of one closed-loop run (see module docstring).

    The cores treat the plan as the owner of the injection event
    arrays: ``begin(t0)`` materialises the DAG's root phases and
    returns the initial event count, ``packet_done(pid, t)`` is called
    at every tail-flit ejection, ``flush(ip)`` (end of cycle, when
    ``dirty``) merges newly released phases into the arrays, and
    ``finished`` breaks the simulation loop.
    """

    def __init__(
        self,
        workload: Workload,
        traffic,
        params: SimParams,
        rate: float,
        seed: int,
    ) -> None:
        if rate <= 0:
            raise ValueError("closed-loop rate must be > 0")
        self.workload = workload
        self.rate = float(rate)
        self._L = params.packet_length
        index, positions, chip_nodes = participating_chips(traffic)
        if len(positions) < 2:
            raise ValueError(
                "closed-loop workloads need >= 2 participating chips "
                f"in scope, got {len(positions)}"
            )
        degraded = getattr(traffic, "degraded", None)
        rng = random.Random(seed ^ 0x10AD)

        # ---- per-phase event templates --------------------------------
        # (offset, src, dst) per event, sorted by (offset, scope order);
        # offsets are relative to the phase's first injection cycle.
        n = len(positions)
        L = self._L
        node_order: Dict[int, int] = {}
        for ci in positions:
            for nid in chip_nodes[ci]:
                node_order[nid] = len(node_order)
        self._templates: List[List[Tuple[int, int, int]]] = []
        self._masked: List[int] = []
        for ph in workload.phases:
            events: List[Tuple[int, int, int, int]] = []
            masked = 0
            if ph.communicates:
                k = max(1, int(math.ceil(ph.volume / L)))
                tag = ph.pattern[0]
                shift = int(ph.pattern[1]) % n if tag == "shift" else 0
                if tag == "shift" and shift == 0:
                    shift = 1  # a wrapped stride still has to move data
                for pi, ci in enumerate(positions):
                    m = len(chip_nodes[ci])
                    # per-node packet interval: a chip with m nodes
                    # injecting a packet every I cycles offers
                    # m*L/I flits/cycle/chip; >= L keeps each node's
                    # packets back-to-back at most
                    interval = max(L, int(math.ceil(m * L / self.rate)))
                    for src in chip_nodes[ci]:
                        for j in range(k):
                            if tag == "shift":
                                dpos = positions[(pi + shift) % n]
                            else:  # all_to_all
                                dpos = positions[
                                    (pi + 1 + j % (n - 1)) % n
                                ]
                            dst = index.counterpart(src, dpos, rng)
                            if degraded is not None and (
                                not degraded.alive(src)
                                or not degraded.alive(dst)
                                or not degraded.reachable(src, dst)
                            ):
                                masked += 1
                                continue
                            events.append(
                                (j * interval, node_order[src], src, dst)
                            )
                events.sort()
            self._templates.append([(o, s, d) for o, _, s, d in events])
            self._masked.append(masked)

        # ---- runtime state --------------------------------------------
        P = workload.num_phases
        idx = workload.phase_index()
        self._indeg = [len(ph.after) for ph in workload.phases]
        self._deps: List[List[int]] = [[] for _ in range(P)]
        for i, ph in enumerate(workload.phases):
            for dep in ph.after:
                self._deps[idx[dep]].append(i)
        self._release_c = [-1] * P
        self._comm_start_c = [-1] * P
        self._done_c = [-1] * P
        self._remaining = [len(t) for t in self._templates]
        self._phases_done = 0
        self._pending: List[Tuple[int, int]] = []
        self._t0 = 0
        self._begun = False
        #: set when completions queued releases a flush must materialise.
        self.dirty = False

        #: event arrays the cores walk (the plan appends, never drops).
        self.ev_cycles: List[int] = []
        self.ev_nodes: List[int] = []
        self.ev_dests: List[int] = []
        self.ev_phase: List[int] = []
        self.total_events = sum(len(t) for t in self._templates)

    # ------------------------------------------------------------------
    @property
    def num_phases(self) -> int:
        return self.workload.num_phases

    @property
    def finished(self) -> bool:
        return self._phases_done == self.workload.num_phases

    def begin(self, t0: int) -> int:
        """Materialise the DAG's root phases; returns the event count."""
        if self._begun:
            raise RuntimeError(
                "a PhasePlan is single-run: build a fresh plan per run()"
            )
        self._begun = True
        self._t0 = t0
        for i in self.workload.topo_order():
            if self._indeg[i] == 0:
                self._pending.append((i, t0))
        self.dirty = True
        return self.flush(0)

    def packet_done(self, pid: int, t: int) -> None:
        """Tail flit of packet ``pid`` ejected at cycle ``t``."""
        i = self.ev_phase[pid]
        rem = self._remaining
        rem[i] -= 1
        if rem[i] == 0:
            self._done_c[i] = t
            self._phases_done += 1
            self._cascade(i, t)

    def _cascade(self, i: int, t_done: int) -> None:
        for j in self._deps[i]:
            self._indeg[j] -= 1
            if self._indeg[j] == 0:
                self._pending.append((j, t_done + 1))
                self.dirty = True

    def flush(self, ip: int) -> int:
        """Materialise pending releases into the event arrays.

        ``ip`` is the core's consumption pointer: events at positions
        ``< ip`` are already injected and must not move; the tail is
        re-sorted (stably) by cycle after the merge.  Returns the new
        event count.
        """
        appended = False
        while self._pending:
            i, base = self._pending.pop(0)
            ph = self.workload.phases[i]
            start = base + ph.compute
            self._release_c[i] = base
            events = self._templates[i]
            if events:
                self._comm_start_c[i] = start + events[0][0]
                cyc = self.ev_cycles
                nod = self.ev_nodes
                dst = self.ev_dests
                phl = self.ev_phase
                for off, s, d in events:
                    cyc.append(start + off)
                    nod.append(s)
                    dst.append(d)
                    phl.append(i)
                appended = True
            else:
                # compute-only (or fully masked) phase: done after its
                # compute delay, cascading dependents immediately
                self._done_c[i] = start
                self._phases_done += 1
                self._cascade(i, start)
        if appended and ip < len(self.ev_cycles):
            tail = sorted(
                zip(
                    self.ev_cycles[ip:],
                    self.ev_nodes[ip:],
                    self.ev_dests[ip:],
                    self.ev_phase[ip:],
                ),
                key=lambda e: e[0],
            )
            self.ev_cycles[ip:] = [e[0] for e in tail]
            self.ev_nodes[ip:] = [e[1] for e in tail]
            self.ev_dests[ip:] = [e[2] for e in tail]
            self.ev_phase[ip:] = [e[3] for e in tail]
        self.dirty = False
        return len(self.ev_cycles)

    # ------------------------------------------------------------------
    def elapsed(self) -> int:
        """Makespan in cycles (through the last completed phase)."""
        last = max((d for d in self._done_c if d >= 0), default=self._t0)
        return max(1, last - self._t0 + 1)

    def horizon(self) -> int:
        """Generous cycle bound for the run window.

        Serialised worst case per phase — compute, the injection span,
        then every flit of the phase through one contended link — plus
        slack; the loop breaks at ``finished`` long before this in any
        healthy run, so the bound only caps a stalled (buggy) run.
        """
        bound = 4096
        L = self._L
        for ph, events in zip(self.workload.phases, self._templates):
            span = events[-1][0] if events else 0
            bound += ph.compute + span + len(events) * L * 8 + 2048
        return bound

    def phase_records(self) -> Tuple[Dict, ...]:
        """Per-phase completion records for :class:`RunRecord.phases`."""
        recs = []
        for i, ph in enumerate(self.workload.phases):
            recs.append(
                {
                    "name": ph.name,
                    "release": self._release_c[i],
                    "comm_start": self._comm_start_c[i],
                    "done": self._done_c[i],
                    "compute": ph.compute,
                    "packets": len(self._templates[i]),
                    "flits": len(self._templates[i]) * self._L,
                    "masked": self._masked[i],
                }
            )
        return tuple(recs)


# ----------------------------------------------------------------------
def workload_for_traffic(name: str, opts, traffic) -> Workload:
    """Build a registered workload (or trace) sized to the traffic's
    participating chips."""
    from .ir import build_workload

    _, positions, _ = participating_chips(traffic)
    return build_workload(name, opts, num_chips=len(positions))


def run_closed_loop(
    spec,
    graph,
    routing,
    traffic,
    rate: float,
    *,
    core: Optional[str] = None,
):
    """Closed-loop twin of the executor's open-loop point simulation.

    Builds the spec's workload over the traffic's participating chips,
    plans the phases, and runs one simulator at ``rate`` (the pacing
    bandwidth, flits/cycle/chip) under the plan.  The run window is
    ``[0, horizon)`` with no warmup/drain; the core breaks out as soon
    as the last phase drains, and the result's ``measure_cycles`` is
    the measured makespan — so ``accepted_rate`` reports the achieved
    collective bandwidth.
    """
    from ..engine.spec import build_metrics, point_seed
    from ..network.simulator import Simulator

    workload = workload_for_traffic(
        spec.workload, dict(spec.workload_opts), traffic
    )
    seed = point_seed(spec, rate)
    plan = PhasePlan(
        workload, traffic, params=spec.params, rate=rate, seed=seed
    )
    params = spec.params.scaled(
        seed=seed,
        warmup_cycles=0,
        measure_cycles=plan.horizon(),
        drain_cycles=0,
    )
    sim = Simulator(
        graph,
        routing,
        traffic,
        params,
        core=core,
        probes=build_metrics(spec),
    )
    result = sim.run(rate, plan=plan)
    if not plan.finished:
        stuck = [
            r["name"] for r in plan.phase_records() if r["done"] < 0
        ]
        raise RuntimeError(
            f"closed-loop run of workload {workload.name!r} did not "
            f"drain within {plan.horizon()} cycles; stuck phase(s): "
            f"{', '.join(stuck)}"
        )
    return result
