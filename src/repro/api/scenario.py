"""Declarative scenarios and studies: the campaign layer over the engine.

A :class:`Scenario` bundles the :class:`~repro.engine.ExperimentSpec`
curves of one comparative experiment (typically one figure panel of the
paper) with presentation metadata — title, paper note, the baseline
architecture's curve label.  A :class:`Study` groups scenarios into a
runnable campaign.  Both round-trip losslessly to plain JSON scenario
files (see the bundled ``scenarios/`` library), and ``Study.run()``
executes every curve point through the parallel experiment engine and
returns the structured :class:`~repro.api.results.StudyResult`
hierarchy.

File format (``schema`` discriminates the two)::

    {"schema": "repro.study/v1", "name": ..., "title": ...,
     "scenarios": [
        {"schema": "repro.scenario/v1", "name": ..., "title": ...,
         "note": ..., "baseline": ..., "stop_after_saturation": 1,
         "specs": [ExperimentSpec.to_data(), ...]},
     ]}

A bare scenario file (the inner object alone) is also accepted
everywhere a study is — it loads as a single-scenario study.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from typing import Callable

from ..engine import ExperimentSpec, ResultCache, run_experiments
from ..network.stats import SimResult
from .results import CurveResult, ScenarioResult, StudyResult

__all__ = [
    "SCENARIO_SCHEMA",
    "STUDY_SCHEMA",
    "Scenario",
    "Study",
    "StudyPointCallback",
    "load_study",
]

#: signature of the optional per-point progress hook of
#: :meth:`Study.run`: ``on_point(scenario, curve_label, rate, result,
#: source)`` with ``source`` one of ``"cache"`` / ``"fresh"``.  Fires
#: in the calling process as points complete (cache replays first);
#: raising from the hook aborts the run — completed points stay cached.
StudyPointCallback = Callable[[str, str, float, SimResult, str], None]

SCENARIO_SCHEMA = "repro.scenario/v1"
STUDY_SCHEMA = "repro.study/v1"


def _curve_label(spec: ExperimentSpec) -> str:
    return spec.label or spec.describe()


@dataclass(frozen=True)
class Scenario:
    """One comparative experiment: labeled curves plus presentation."""

    name: str
    specs: Tuple[ExperimentSpec, ...]
    title: str = ""
    #: paper expectation shown above the rendered tables.
    note: str = ""
    #: label of the reference curve (usually the switch-based baseline).
    baseline: str = ""
    #: sweep cutoff forwarded to the engine (see ``run_experiments``).
    stop_after_saturation: int = 1
    #: free-form discovery tags (``repro-dragonfly list --tag ...``).
    tags: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a scenario needs a name")
        if not self.specs:
            raise ValueError(f"scenario {self.name!r} has no specs")
        labels = [_curve_label(s) for s in self.specs]
        dupes = sorted({l for l in labels if labels.count(l) > 1})
        if dupes:
            raise ValueError(
                f"scenario {self.name!r} has duplicate curve labels {dupes}; "
                "give each spec a distinct label"
            )
        if self.baseline and self.baseline not in labels:
            raise ValueError(
                f"scenario {self.name!r} baseline {self.baseline!r} is not "
                f"one of its curve labels {labels}"
            )
        if self.stop_after_saturation < 1:
            raise ValueError("stop_after_saturation must be >= 1")

    @classmethod
    def create(
        cls,
        name: str,
        specs: Sequence[ExperimentSpec],
        **meta,
    ) -> "Scenario":
        return cls(name=name, specs=tuple(specs), **meta)

    def labels(self) -> List[str]:
        return [_curve_label(s) for s in self.specs]

    def with_metrics(self, metrics) -> "Scenario":
        """Copy with every spec's probe axis replaced (see
        :meth:`~repro.engine.ExperimentSpec.with_metrics`)."""
        return replace(
            self,
            specs=tuple(s.with_metrics(metrics) for s in self.specs),
        )

    def with_workload(self, workload, workload_opts=None) -> "Scenario":
        """Copy with every spec's closed-loop axis replaced (see
        :meth:`~repro.engine.ExperimentSpec.with_workload`)."""
        return replace(
            self,
            specs=tuple(
                s.with_workload(workload, workload_opts)
                for s in self.specs
            ),
        )

    def run(
        self,
        *,
        workers: Optional[int] = None,
        cache: Optional[Union[ResultCache, str, Path]] = None,
        on_point: Optional[StudyPointCallback] = None,
    ) -> ScenarioResult:
        """Run just this scenario (see :meth:`Study.run`)."""
        study = Study(name=self.name, scenarios=(self,))
        result = study.run(workers=workers, cache=cache, on_point=on_point)
        return result.scenarios[0]

    # -- declarative form ----------------------------------------------
    def to_data(self) -> Dict:
        return {
            "schema": SCENARIO_SCHEMA,
            "name": self.name,
            "title": self.title,
            "note": self.note,
            "baseline": self.baseline,
            "stop_after_saturation": self.stop_after_saturation,
            "tags": list(self.tags),
            "specs": [s.to_data() for s in self.specs],
        }

    @classmethod
    def from_data(cls, data: Dict) -> "Scenario":
        schema = data.get("schema")
        if schema is not None and schema != SCENARIO_SCHEMA:
            raise ValueError(
                f"cannot read {schema!r} payload as {SCENARIO_SCHEMA!r}"
            )
        return cls(
            name=data["name"],
            specs=tuple(
                ExperimentSpec.from_data(s) for s in data["specs"]
            ),
            title=data.get("title", ""),
            note=data.get("note", ""),
            baseline=data.get("baseline", ""),
            stop_after_saturation=int(data.get("stop_after_saturation", 1)),
            tags=tuple(data.get("tags", ())),
        )

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_data(), indent=2) + "\n")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Scenario":
        return cls.from_data(json.loads(Path(path).read_text()))


@dataclass(frozen=True)
class Study:
    """A runnable campaign: ordered scenarios under one name."""

    name: str
    scenarios: Tuple[Scenario, ...]
    title: str = ""
    description: str = ""
    #: free-form discovery tags (``repro-dragonfly list --tag ...``).
    tags: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a study needs a name")
        if not self.scenarios:
            raise ValueError(f"study {self.name!r} has no scenarios")
        names = [s.name for s in self.scenarios]
        dupes = sorted({n for n in names if names.count(n) > 1})
        if dupes:
            raise ValueError(
                f"study {self.name!r} has duplicate scenario names {dupes}"
            )

    @classmethod
    def create(
        cls, name: str, scenarios: Sequence[Scenario], **meta
    ) -> "Study":
        return cls(name=name, scenarios=tuple(scenarios), **meta)

    def names(self) -> List[str]:
        return [s.name for s in self.scenarios]

    def num_specs(self) -> int:
        return sum(len(s.specs) for s in self.scenarios)

    def num_points(self) -> int:
        """Upper bound on simulated points (saturation cutoffs may stop
        sweeps early) — the denominator progress displays use."""
        return sum(
            len(spec.rates)
            for scn in self.scenarios
            for spec in scn.specs
        )

    def scenario(self, name: str) -> Scenario:
        for s in self.scenarios:
            if s.name == name:
                return s
        raise KeyError(
            f"study {self.name!r} has no scenario {name!r}; "
            f"scenarios: {self.names()}"
        )

    def __getitem__(self, name: str) -> Scenario:
        return self.scenario(name)

    def with_metrics(self, metrics) -> "Study":
        """Copy with the probe axis applied to every scenario's specs.

        The CLI's ``run --metrics link_util,misroute`` flag goes
        through here; channels then appear on every simulated point of
        the returned study's results.
        """
        return replace(
            self,
            scenarios=tuple(
                s.with_metrics(metrics) for s in self.scenarios
            ),
        )

    def with_workload(self, workload, workload_opts=None) -> "Study":
        """Copy with the closed-loop axis applied to every spec.

        The CLI's ``run <study> --workload ring_allreduce`` flag goes
        through here: every curve of the study is re-driven closed-loop
        by the named workload (rates become pacing bandwidths).
        """
        return replace(
            self,
            scenarios=tuple(
                s.with_workload(workload, workload_opts)
                for s in self.scenarios
            ),
        )

    # -- execution -----------------------------------------------------
    def run(
        self,
        *,
        workers: Optional[int] = None,
        cache: Optional[Union[ResultCache, str, Path]] = None,
        on_point: Optional[StudyPointCallback] = None,
    ) -> StudyResult:
        """Run every scenario through the parallel experiment engine.

        Scenarios sharing a ``stop_after_saturation`` value are batched
        into one ``run_experiments`` call so their points fill the same
        worker pool.  ``cache`` may be a :class:`~repro.engine.
        ResultCache` or a directory path.  ``on_point`` is an optional
        :data:`StudyPointCallback` fired as points complete — live
        progress for the CLI's ``run --progress`` and the streaming
        backbone of the simulation service.  The returned hierarchy is
        deterministic apart from its ``meta`` block (per-point seeds are
        derived from the spec hashes).
        """
        if isinstance(cache, (str, Path)):
            cache = ResultCache(cache)
        t0 = time.perf_counter()

        batches: Dict[int, List[Tuple[int, Scenario]]] = {}
        for si, scn in enumerate(self.scenarios):
            batches.setdefault(scn.stop_after_saturation, []).append(
                (si, scn)
            )
        results: Dict[int, ScenarioResult] = {}
        for stop, members in sorted(batches.items()):
            specs = [spec for _, scn in members for spec in scn.specs]
            engine_cb = None
            if on_point is not None:
                origin = [
                    (scn.name, _curve_label(spec))
                    for _, scn in members
                    for spec in scn.specs
                ]

                def engine_cb(si, ri, rate, res, source, _origin=origin):
                    scn_name, label = _origin[si]
                    on_point(scn_name, label, rate, res, source)

            sweeps = iter(
                run_experiments(
                    specs,
                    workers=workers,
                    cache=cache,
                    stop_after_saturation=stop,
                    on_point=engine_cb,
                )
            )
            for si, scn in members:
                curves = tuple(
                    CurveResult.from_sweep(next(sweeps), spec.config_key())
                    for spec in scn.specs
                )
                results[si] = ScenarioResult(
                    name=scn.name,
                    curves=curves,
                    title=scn.title,
                    note=scn.note,
                    baseline=scn.baseline,
                )

        meta: Dict = {
            "elapsed_s": round(time.perf_counter() - t0, 3),
            "workers": workers,
        }
        if cache is not None:
            meta["cache"] = {
                "root": str(cache.root),
                "hits": cache.hits,
                "misses": cache.misses,
            }
        return StudyResult(
            name=self.name,
            scenarios=tuple(results[si] for si in range(len(self.scenarios))),
            title=self.title,
            meta=meta,
        )

    def has_tag(self, tag: str) -> bool:
        """Whether the study or any of its scenarios carries ``tag``."""
        return tag in self.tags or any(
            tag in s.tags for s in self.scenarios
        )

    # -- declarative form ----------------------------------------------
    def to_data(self) -> Dict:
        return {
            "schema": STUDY_SCHEMA,
            "name": self.name,
            "title": self.title,
            "description": self.description,
            "tags": list(self.tags),
            "scenarios": [s.to_data() for s in self.scenarios],
        }

    @classmethod
    def from_data(cls, data: Dict) -> "Study":
        schema = data.get("schema")
        if schema == SCENARIO_SCHEMA:
            return cls.wrap(Scenario.from_data(data))
        if schema is not None and schema != STUDY_SCHEMA:
            raise ValueError(
                f"cannot read {schema!r} payload as {STUDY_SCHEMA!r}"
            )
        return cls(
            name=data["name"],
            scenarios=tuple(
                Scenario.from_data(s) for s in data["scenarios"]
            ),
            title=data.get("title", ""),
            description=data.get("description", ""),
            tags=tuple(data.get("tags", ())),
        )

    @classmethod
    def wrap(cls, scenario: Scenario) -> "Study":
        """Lift a single scenario into a runnable one-scenario study.

        The study title stays empty — the scenario renders its own —
        so the wrapped form prints exactly like the bare scenario.
        """
        return cls(name=scenario.name, scenarios=(scenario,))

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_data(), indent=2) + "\n")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Study":
        return cls.from_data(json.loads(Path(path).read_text()))


def load_study(path: Union[str, Path]) -> Study:
    """Load a study *or* scenario file as a runnable :class:`Study`."""
    return Study.load(path)
