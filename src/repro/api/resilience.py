"""Resilience studies: throughput-under-failure campaigns and reports.

This module turns the fault axis of :class:`~repro.engine.ExperimentSpec`
into a full scenario family:

* :func:`resilience_study` builds a failure-rate x offered-load campaign
  (one scenario per failure rate, one curve per architecture) that runs
  through the ordinary parallel/cached engine path;
* :func:`verify_study_faults` re-checks VC deadlock freedom of the
  degraded routing on **every** distinct fault instance a study samples;
* :func:`resilience_report` condenses a finished
  :class:`~repro.api.results.StudyResult` into saturation-load
  *retention* curves — the fraction of healthy-wafer saturation
  throughput each architecture keeps as links fail, the quantity the
  paper's path-diversity argument predicts favours the switch-less
  design.

Scenario naming convention: the failure rate is encoded in the scenario
name as ``fail-<rate>`` (e.g. ``fail-0.05``); the report parses it back,
so hand-written resilience scenario files interoperate as long as they
follow it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..engine import (
    ExperimentSpec,
    build_faults,
    build_routing,
    build_system,
)
from ..faults import degrade
from ..routing import verify_deadlock_free
from .compare import _arch_fragment
from .library import make_spec, sim_params
from .results import StudyResult
from .scenario import Scenario, Study

__all__ = [
    "DEFAULT_FAILURE_RATES",
    "ResilienceReport",
    "resilience_arches",
    "resilience_report",
    "resilience_study",
    "verify_study_faults",
]

#: default failure-rate axis: healthy baseline plus three degraded steps.
DEFAULT_FAILURE_RATES = (0.0, 0.02, 0.05, 0.1)

_SCENARIO_PREFIX = "fail-"


def _fail_name(rate: float) -> str:
    return f"{_SCENARIO_PREFIX}{rate:g}"


def _fail_rate(name: str) -> Optional[float]:
    if not name.startswith(_SCENARIO_PREFIX):
        return None
    try:
        return float(name[len(_SCENARIO_PREFIX):])
    except ValueError:
        return None


#: CLI architecture token -> curve label.
_ARCH_LABELS = {
    "switchless": "SW-less",
    "dragonfly": "SW-based",
}


def _arch_label(token: str) -> str:
    if token in _ARCH_LABELS:
        return _ARCH_LABELS[token]
    if token.startswith("switchless-"):
        return f"SW-less-{token.split('-', 1)[1].upper()}"
    return token


def resilience_arches(
    names: Sequence[str],
    *,
    preset: str = "small_equiv",
    routing_mode: str = "minimal",
) -> Dict[str, Dict]:
    """Architecture fragments by CLI name (``switchless``,
    ``switchless-<n>b``, ``dragonfly``), sharing the token grammar and
    preset mapping of :func:`~repro.api.compare.compare_scenario` (the
    Dragonfly side transparently uses the equivalent baseline preset).
    """
    out: Dict[str, Dict] = {}
    for name in names:
        token = name.strip().lower()
        out[_arch_label(token)] = _arch_fragment(token, preset, routing_mode)
    return out


def resilience_study(
    *,
    name: str = "resilience",
    arches=("switchless", "dragonfly"),
    failure_rates: Sequence[float] = DEFAULT_FAILURE_RATES,
    rates: Sequence[float] = (0.1, 0.25, 0.4, 0.55),
    preset: str = "small_equiv",
    traffic: str = "uniform",
    scope: str = "global",
    routing_mode: str = "minimal",
    fault_model: str = "random",
    fault_seed: int = 7,
    defect_radius_mm: float = 8.0,
    params=None,
    scale: str = "default",
    baseline: str = "",
) -> Study:
    """Build a failure-rate x load campaign over the given architectures.

    ``arches`` is either a sequence of architecture names (resolved via
    :func:`resilience_arches` against ``preset`` and ``routing_mode``)
    or an explicit ``{label: make_spec-keyword-fragment}`` mapping for
    custom systems.  ``scope`` is ``"global"`` (all terminals) or
    ``"local"`` (W-group / Dragonfly group 0), as in
    :func:`~repro.api.compare.compare_scenario`.

    ``fault_model`` selects how a failure rate is realised:

    * ``random`` — the rate is the per-channel failure probability;
    * ``yield`` — the rate is re-interpreted as expected defect clusters
      per wafer.  Only the wafer-integrated switch-less architectures
      have a floorplan to map defects through, so any other topology in
      ``arches`` is rejected up front.

    Every architecture at every failure rate shares ``fault_seed``, so
    the comparison is across architectures under the *same* fault law,
    with the healthy ``fail-0`` scenario as the retention baseline.
    """
    if fault_model not in ("random", "yield"):
        raise ValueError(
            f"fault_model must be 'random' or 'yield', got {fault_model!r}"
        )
    if scope not in ("local", "global"):
        raise ValueError(f"scope must be 'local' or 'global', not {scope!r}")
    if isinstance(arches, dict):
        arch_map = dict(arches)
    else:
        arch_map = resilience_arches(
            arches, preset=preset, routing_mode=routing_mode
        )
    if fault_model == "yield":
        non_wafer = [
            label
            for label, arch in arch_map.items()
            if arch.get("topology") != "switchless"
        ]
        if non_wafer:
            raise ValueError(
                f"the yield fault model needs wafer-integrated "
                f"(switch-less) architectures; {', '.join(non_wafer)} "
                "has no wafer floorplan to map defects through — use "
                "the random model for cross-architecture comparisons"
            )
    traffic_opts: Optional[Dict] = (
        {"scope": ("group", 0)} if scope == "local" else None
    )
    params = params or sim_params(scale)
    if not baseline:
        baseline = next(iter(arch_map))

    scenarios: List[Scenario] = []
    for fr in failure_rates:
        fr = float(fr)
        if fr < 0:
            raise ValueError(f"failure rate {fr} must be >= 0")
        if fr == 0.0:
            faults = None
            note = "healthy wafer: the retention baseline"
        elif fault_model == "random":
            faults = {"model": "random", "link_rate": fr, "seed": fault_seed}
            note = f"{fr:.1%} of channels failed (seed {fault_seed})"
        else:
            faults = {
                "model": "yield",
                "defects_per_wafer": fr,
                "defect_radius_mm": defect_radius_mm,
                "seed": fault_seed,
            }
            note = (
                f"{fr:g} defect cluster(s)/wafer, "
                f"r={defect_radius_mm:g}mm (seed {fault_seed})"
            )
        specs = tuple(
            make_spec(
                label, traffic=traffic, traffic_opts=traffic_opts,
                rates=rates, params=params, scale=scale, **arch,
            ).with_faults(faults)
            for label, arch in arch_map.items()
        )
        scenarios.append(
            Scenario(
                name=_fail_name(fr),
                title=f"throughput under failure: {_fail_name(fr)}",
                note=note,
                baseline=baseline,
                specs=specs,
                tags=("resilience",),
            )
        )
    return Study(
        name=name,
        title=(
            f"Resilience: saturation retention vs failed "
            f"{'channels' if fault_model == 'random' else 'defects'} "
            f"({', '.join(arch_map)})"
        ),
        description=(
            "Throughput/latency degradation as the fault axis sweeps "
            "failure rates; report with resilience_report()."
        ),
        scenarios=tuple(scenarios),
        tags=("resilience",),
    )


# ----------------------------------------------------------------------
# per-instance deadlock verification
# ----------------------------------------------------------------------
def verify_study_faults(
    study: Study, *, max_pairs: int = 300, seed: int = 0
) -> List[Dict]:
    """Deadlock-check the degraded routing of every fault instance.

    Every distinct ``(topology, routing, faults)`` combination in the
    study is rebuilt, degraded, wrapped and run through the CDG checker
    of :mod:`repro.routing.deadlock`.  Returns one record per instance
    with the spec label, the sampled fault summary and the report.
    """
    seen = set()
    systems: Dict[Tuple, object] = {}  # one build per distinct topology
    records: List[Dict] = []
    for scn in study.scenarios:
        for spec in scn.specs:
            fspec = build_faults(spec)
            if fspec is None:
                continue
            key = (
                spec.topology, spec.topology_opts,
                spec.routing, spec.routing_opts, spec.faults,
            )
            if key in seen:
                continue
            seen.add(key)
            topo_key = (spec.topology, spec.topology_opts)
            system = systems.get(topo_key)
            if system is None:
                system = systems[topo_key] = build_system(spec)
            routing = build_routing(spec, system)  # fault-aware wrapped
            degraded = degrade(system, fspec)
            report = verify_deadlock_free(
                system.graph, routing, max_pairs=max_pairs, seed=seed
            )
            records.append(
                {
                    "scenario": scn.name,
                    "label": spec.label or spec.describe(),
                    "faults": degraded.faults.describe(),
                    "acyclic": report.acyclic,
                    "report": report,
                }
            )
    return records


# ----------------------------------------------------------------------
# the retention report
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ResilienceReport:
    """Saturation-retention curves condensed from a resilience study.

    ``rows`` maps each architecture label to its per-failure-rate
    records, ordered by failure rate; retention is relative to the
    ``fail-0`` (healthy) scenario of the same label.
    """

    study: str
    rows: Dict[str, List[Dict]] = field(default_factory=dict)

    def labels(self) -> List[str]:
        return list(self.rows)

    def retention(self, label: str) -> List[Tuple[float, float]]:
        """(failure_rate, throughput retention) pairs for one curve."""
        return [
            (r["failure_rate"], r["retention"]) for r in self.rows[label]
        ]

    def to_dict(self) -> Dict:
        return {
            "schema": "repro.resilience-report/v1",
            "study": self.study,
            "rows": {k: list(v) for k, v in self.rows.items()},
        }

    def render(self) -> str:
        out = [f"==== resilience report: {self.study} ===="]
        for label, rows in self.rows.items():
            out.append(f"# {label}")
            out.append(
                "fail_rate  saturation  max_accepted  retention  avg_lat0"
            )
            for r in rows:
                sat = r["saturation_rate"]
                sat_s = f"{sat:10.3f}" if sat != float("inf") else "      none"
                out.append(
                    f"{r['failure_rate']:9.3g}  {sat_s}  "
                    f"{r['max_accepted']:12.3f}  {r['retention']:9.2%}  "
                    f"{r['zero_load_latency']:8.1f}"
                )
        return "\n".join(out)


def resilience_report(result: StudyResult) -> ResilienceReport:
    """Condense a resilience :class:`StudyResult` into retention curves.

    Scenarios whose names do not follow the ``fail-<rate>`` convention
    are ignored; a study without a ``fail-0`` scenario reports retention
    relative to the lowest failure rate present.
    """
    per_label: Dict[str, List[Dict]] = {}
    for scn in result.scenarios:
        fr = _fail_rate(scn.name)
        if fr is None:
            continue
        for curve in scn.curves:
            per_label.setdefault(curve.label, []).append(
                {
                    "failure_rate": fr,
                    "saturation_rate": curve.saturation_rate,
                    "max_accepted": curve.max_accepted,
                    "zero_load_latency": curve.zero_load_latency(),
                }
            )
    if not per_label:
        raise ValueError(
            "no 'fail-<rate>' scenarios found; is this a resilience study?"
        )
    for label, rows in per_label.items():
        rows.sort(key=lambda r: r["failure_rate"])
        base = rows[0]["max_accepted"]
        for r in rows:
            r["retention"] = r["max_accepted"] / base if base else 0.0
    return ResilienceReport(study=result.name, rows=per_label)
