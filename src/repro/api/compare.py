"""Ad-hoc architecture comparisons: the facade behind ``repro-dragonfly
compare`` (and the deprecated ``sweep`` alias).

:func:`compare_scenario` builds a one-panel :class:`~repro.api.Scenario`
with one curve per requested architecture token:

``switchless``
    the paper's switch-less Dragonfly;
``switchless-<n>b``
    same with an ``n``-times intra-C-group bandwidth (``2b``/``4b`` are
    the paper's 2B/4B variants);
``dragonfly``
    the switch-based baseline (ideal router via ``vc_spread=2``).

The ``preset`` names a :class:`~repro.core.SwitchlessConfig` preset and
is validated against the registered preset list; for the Dragonfly
baseline it is transparently mapped to the equivalent
:class:`~repro.topology.dragonfly.DragonflyConfig` preset
(``radix16_equiv`` -> ``radix16`` etc.) so one flag configures both
sides of a comparison.
"""

from __future__ import annotations

import re
from typing import Dict, Optional, Sequence

from ..engine import list_presets
from ..engine.spec import suggest
from ..network.params import SimParams
from .library import dragonfly_arch, make_spec, switchless_arch
from .scenario import Scenario

__all__ = ["compare_scenario"]

#: switch-less preset -> structurally equivalent Dragonfly preset.
_DRAGONFLY_EQUIV = {
    "radix16_equiv": "radix16",
    "radix32_equiv": "radix32",
    "radix8_equiv": "radix8",
    "small_equiv": "small_equiv",
}

_SWITCHLESS_RE = re.compile(r"switchless(?:-(\d+)b)?")


def validate_preset(preset: str) -> str:
    """Check ``preset`` against the switch-less config's preset names."""
    known = list_presets("switchless")
    if preset not in known:
        raise ValueError(
            f"unknown preset {preset!r}{suggest(preset, known)}; "
            f"available: {known}"
        )
    return preset


def _arch_fragment(token: str, preset: str, routing: str) -> Dict:
    token = token.strip().lower()
    if token == "dragonfly":
        dfly = preset if preset in list_presets("dragonfly") else (
            _DRAGONFLY_EQUIV.get(preset)
        )
        if dfly is None:
            raise ValueError(
                f"preset {preset!r} has no Dragonfly equivalent; "
                f"available: {list_presets('dragonfly')}"
            )
        return dragonfly_arch(routing, preset=dfly)
    match = _SWITCHLESS_RE.fullmatch(token)
    if match:
        opts = {"preset": validate_preset(preset)}
        capacity = int(match.group(1)) if match.group(1) else 1
        if capacity > 1:
            opts["mesh_capacity"] = capacity
        return switchless_arch(routing, **opts)
    raise ValueError(
        f"unknown architecture {token!r}; known: switchless, "
        "switchless-<n>b (e.g. switchless-2b), dragonfly"
    )


def compare_scenario(
    arches: Sequence[str],
    *,
    pattern: str = "uniform",
    scope: str = "global",
    preset: str = "small_equiv",
    routing: str = "minimal",
    rates: Sequence[float],
    params: Optional[SimParams] = None,
    name: str = "compare",
) -> Scenario:
    """One scenario comparing ``arches`` under a shared workload.

    ``scope`` is ``"global"`` (all terminals) or ``"local"`` (terminals
    of W-group / Dragonfly group 0).  ``pattern`` is any registered
    traffic kind; hyphens are accepted (``bit-reverse``).
    """
    if not arches:
        raise ValueError("need at least one architecture to compare")
    validate_preset(preset)
    if scope not in ("local", "global"):
        raise ValueError(f"scope must be 'local' or 'global', not {scope!r}")
    traffic_opts: Dict = {}
    if scope == "local":
        traffic_opts["scope"] = ("group", 0)
    params = params or SimParams()
    specs = []
    for token in arches:
        arch = _arch_fragment(token, preset, routing)
        specs.append(
            make_spec(
                token.strip().lower(),
                traffic=pattern.replace("-", "_"),
                traffic_opts=traffic_opts,
                rates=rates,
                params=params,
                **arch,
            )
        )
    return Scenario(
        name=name,
        title=f"{'/'.join(s.label for s in specs)}: {pattern} ({scope}, "
        f"{preset})",
        note="",
        baseline=specs[0].label if len(specs) > 1 else "",
        specs=tuple(specs),
    )
