"""Structured results: the ``StudyResult -> ScenarioResult -> PointResult``
hierarchy returned by :meth:`repro.api.Study.run`.

Each level is a plain dataclass with a stable, schema-tagged JSON form:

* :class:`PointResult` — one simulated ``(spec, rate)`` point;
* :class:`CurveResult` — one labeled latency-vs-load curve (the points
  of one :class:`~repro.engine.ExperimentSpec`), with the saturation
  summaries the benchmarks assert on;
* :class:`ScenarioResult` — the curves of one comparative scenario
  (typically one figure panel of the paper), addressable by label;
* :class:`StudyResult` — the scenarios of one campaign, with
  ``to_json()`` / ``to_csv()`` export and a text :meth:`~StudyResult.
  render` that replaces the benchmarks' hand-rolled table printing.

Everything except the ``meta`` block (timing, worker count, cache
counters) is a pure function of the study definition, so two runs of
the same study — CLI or Python, serial or parallel, cached or fresh —
serialise identically modulo ``meta``.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from ..metrics import MetricChannel
from ..network.stats import SimResult
from ..network.sweep import LoadSweep

__all__ = [
    "STUDY_RESULT_SCHEMA",
    "PointResult",
    "CurveResult",
    "ScenarioResult",
    "StudyResult",
]

#: stable schema tag of the serialised hierarchy; bump the version on
#: incompatible layout changes.
STUDY_RESULT_SCHEMA = "repro.study-result/v1"


def _fmt(value: float) -> str:
    """CSV cell for a float: short, stable, empty for NaN."""
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return ""
    return f"{value:.6g}"


@dataclass(frozen=True)
class PointResult:
    """One simulated point of a curve: an offered rate and its outcome."""

    rate: float
    result: SimResult

    @property
    def offered(self) -> float:
        return self.result.offered_rate

    @property
    def accepted(self) -> float:
        return self.result.accepted_rate

    @property
    def avg_latency(self) -> float:
        return self.result.avg_latency

    @property
    def saturated(self) -> bool:
        return self.result.saturated

    @property
    def channels(self) -> Dict[str, MetricChannel]:
        """Metric channels of this point (see :mod:`repro.metrics`)."""
        return self.result.channels

    def channel(self, name: str) -> MetricChannel:
        try:
            return self.result.channels[name]
        except KeyError:
            raise KeyError(
                f"point rate={self.rate} has no channel {name!r}; "
                f"channels: {sorted(self.result.channels)}"
            ) from None

    def to_dict(self) -> Dict:
        return {"rate": self.rate, "result": self.result.to_dict()}

    @classmethod
    def from_dict(cls, data: Dict) -> "PointResult":
        return cls(
            rate=float(data["rate"]),
            result=SimResult.from_dict(data["result"]),
        )


@dataclass(frozen=True)
class CurveResult:
    """One labeled latency-vs-load curve and its saturation summary."""

    label: str
    points: tuple
    #: ``config_key()`` of the spec that produced the curve, tying the
    #: result back to its cache entries.
    spec_key: str = ""

    @property
    def rates(self) -> List[float]:
        return [p.rate for p in self.points]

    @property
    def saturation_rate(self) -> float:
        """First offered rate at which the run saturated (inf if none)."""
        for p in self.points:
            if p.saturated:
                return p.rate
        return float("inf")

    @property
    def max_accepted(self) -> float:
        """Highest accepted throughput seen across the curve."""
        return max((p.accepted for p in self.points), default=0.0)

    def zero_load_latency(self) -> float:
        """Average latency at the lowest *non-saturated* measured rate.

        Saturated points are skipped (their latency reflects the
        measurement window, not the network); ``nan`` when every point
        saturated or the curve is empty — summaries carry the NaN
        through (JSON ``null``, empty CSV cell) rather than reporting
        a bogus number.
        """
        for p in self.points:
            if not p.saturated:
                return p.avg_latency
        return float("nan")

    def summary(self) -> Dict[str, float]:
        return {
            "saturation_rate": self.saturation_rate,
            "max_accepted": self.max_accepted,
            "zero_load_latency": self.zero_load_latency(),
        }

    def channel_names(self) -> List[str]:
        """Channel names present on any point of this curve."""
        names: List[str] = []
        for p in self.points:
            for name in p.channels:
                if name not in names:
                    names.append(name)
        return names

    def format_table(self) -> str:
        lines = [f"# {self.label}", "offered  accepted  avg_latency"]
        for p in self.points:
            lines.append(
                f"{p.rate:7.3f}  {p.accepted:8.3f}  {p.avg_latency:11.1f}"
            )
        return "\n".join(lines)

    def to_sweep(self) -> LoadSweep:
        """View as the engine's :class:`~repro.network.sweep.LoadSweep`."""
        return LoadSweep(
            label=self.label,
            rates=[p.rate for p in self.points],
            results=[p.result for p in self.points],
        )

    @classmethod
    def from_sweep(cls, sweep: LoadSweep, spec_key: str = "") -> "CurveResult":
        return cls(
            label=sweep.label,
            points=tuple(
                PointResult(rate=r, result=res)
                for r, res in zip(sweep.rates, sweep.results)
            ),
            spec_key=spec_key,
        )

    def to_dict(self) -> Dict:
        return {
            "label": self.label,
            "spec_key": self.spec_key,
            "points": [p.to_dict() for p in self.points],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "CurveResult":
        return cls(
            label=data["label"],
            points=tuple(PointResult.from_dict(p) for p in data["points"]),
            spec_key=data.get("spec_key", ""),
        )


@dataclass(frozen=True)
class ScenarioResult:
    """All curves of one comparative scenario, addressable by label."""

    name: str
    curves: tuple
    title: str = ""
    note: str = ""
    #: label of the reference curve that speedups are reported against.
    baseline: str = ""

    def labels(self) -> List[str]:
        return [c.label for c in self.curves]

    def curve(self, label: str) -> CurveResult:
        for c in self.curves:
            if c.label == label:
                return c
        raise KeyError(
            f"scenario {self.name!r} has no curve {label!r}; "
            f"curves: {self.labels()}"
        )

    def __getitem__(self, label: str) -> CurveResult:
        return self.curve(label)

    def __contains__(self, label: str) -> bool:
        return any(c.label == label for c in self.curves)

    def __iter__(self) -> Iterator[CurveResult]:
        return iter(self.curves)

    def summary(self) -> List[Dict]:
        """Per-curve saturation summaries, plus the accepted-throughput
        ratio against the baseline curve when one is named."""
        base = None
        if self.baseline and self.baseline in self:
            base = self.curve(self.baseline).max_accepted
        rows = []
        for c in self.curves:
            row = {"label": c.label, **c.summary()}
            if base:
                row["vs_baseline"] = c.max_accepted / base
            rows.append(row)
        return rows

    def render(self) -> str:
        out = [f"==== {self.title or self.name} ===="]
        if self.note:
            out.append(self.note)
        for c in self.curves:
            out.append(c.format_table())
            line = (
                f"-> saturation ~{c.saturation_rate:.2f}, "
                f"max accepted {c.max_accepted:.2f} flits/cycle/chip"
            )
            if self.baseline and c.label != self.baseline:
                base = self.curve(self.baseline).max_accepted
                if base > 0:
                    line += f" ({c.max_accepted / base:.2f}x {self.baseline})"
            out.append(line)
        return "\n".join(out)

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "title": self.title,
            "note": self.note,
            "baseline": self.baseline,
            "curves": [c.to_dict() for c in self.curves],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "ScenarioResult":
        return cls(
            name=data["name"],
            curves=tuple(CurveResult.from_dict(c) for c in data["curves"]),
            title=data.get("title", ""),
            note=data.get("note", ""),
            baseline=data.get("baseline", ""),
        )


#: flat export columns of :meth:`StudyResult.to_csv`, one row per point.
_CSV_COLUMNS = (
    "scenario",
    "curve",
    "rate",
    "offered",
    "effective_offered",
    "accepted",
    "avg_latency",
    "p50_latency",
    "p99_latency",
    "avg_hops",
    "saturated",
)


@dataclass(frozen=True)
class StudyResult:
    """Results of a whole campaign: one entry per scenario, in order."""

    name: str
    scenarios: tuple
    title: str = ""
    #: run provenance (elapsed seconds, worker count, cache counters).
    #: Excluded from result equality — everything else is deterministic.
    meta: Dict = field(default_factory=dict, compare=False)

    def names(self) -> List[str]:
        return [s.name for s in self.scenarios]

    def scenario(self, name: str) -> ScenarioResult:
        for s in self.scenarios:
            if s.name == name:
                return s
        raise KeyError(
            f"study {self.name!r} has no scenario {name!r}; "
            f"scenarios: {self.names()}"
        )

    def __getitem__(self, name: str) -> ScenarioResult:
        return self.scenario(name)

    def __contains__(self, name: str) -> bool:
        return any(s.name == name for s in self.scenarios)

    def __iter__(self) -> Iterator[ScenarioResult]:
        return iter(self.scenarios)

    def render(self) -> str:
        out = []
        if self.title:
            out.append(f"=== {self.title} ===")
        out.extend(s.render() for s in self.scenarios)
        return "\n\n".join(out)

    # -- export --------------------------------------------------------
    def to_dict(self) -> Dict:
        return {
            "schema": STUDY_RESULT_SCHEMA,
            "name": self.name,
            "title": self.title,
            "meta": dict(self.meta),
            "scenarios": [s.to_dict() for s in self.scenarios],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "StudyResult":
        schema = data.get("schema")
        if schema != STUDY_RESULT_SCHEMA:
            raise ValueError(
                f"cannot read {schema!r} payload as {STUDY_RESULT_SCHEMA!r}"
            )
        return cls(
            name=data["name"],
            scenarios=tuple(
                ScenarioResult.from_dict(s) for s in data["scenarios"]
            ),
            title=data.get("title", ""),
            meta=dict(data.get("meta", {})),
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "StudyResult":
        return cls.from_dict(json.loads(text))

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "StudyResult":
        return cls.from_json(Path(path).read_text())

    # -- metric channels ----------------------------------------------
    def channel_names(self) -> List[str]:
        """Channel names present anywhere in the study, in first-seen
        order (probe-off studies return ``[]``)."""
        names: List[str] = []
        for scn in self.scenarios:
            for curve in scn.curves:
                for name in curve.channel_names():
                    if name not in names:
                        names.append(name)
        return names

    def iter_channels(self, name: str):
        """Yield ``(scenario, curve, point, channel)`` for every point
        carrying channel ``name``."""
        for scn in self.scenarios:
            for curve in scn.curves:
                for p in curve.points:
                    ch = p.channels.get(name)
                    if ch is not None:
                        yield scn, curve, p, ch

    def channel_csv(self, name: str) -> str:
        """Long-form CSV of one channel across every point.

        Rows are the channel's own rows, prefixed with
        ``scenario,curve,rate`` columns so a single file holds the
        whole study's telemetry for that channel.
        """
        lines: List[str] = []
        for scn, curve, p, ch in self.iter_channels(name):
            block = ch.to_csv(
                prefix=(
                    f"scenario={scn.name}",
                    f"curve={curve.label}",
                    f"rate={_fmt(p.rate)}",
                )
            ).splitlines()
            if not lines:
                lines.append(block[0])
            lines.extend(block[1:])
        if not lines:
            raise KeyError(
                f"study {self.name!r} has no channel {name!r}; "
                f"channels: {self.channel_names()}"
            )
        return "\n".join(lines) + "\n"

    def render_channel(self, name: str, max_rows: int = 12) -> str:
        """Text rendering of one channel across every point."""
        out: List[str] = []
        for scn, curve, p, ch in self.iter_channels(name):
            out.append(
                f"==== {scn.name} / {curve.label} @ rate "
                f"{_fmt(p.rate)} ===="
            )
            out.append(ch.format_table(max_rows=max_rows))
        if not out:
            raise KeyError(
                f"study {self.name!r} has no channel {name!r}; "
                f"channels: {self.channel_names()}"
            )
        return "\n".join(out)

    def to_csv(self) -> str:
        """Flat per-point table (one header row, ``,``-separated)."""
        lines = [",".join(_CSV_COLUMNS)]
        for scn in self.scenarios:
            for curve in scn.curves:
                for p in curve.points:
                    r = p.result
                    lines.append(
                        ",".join(
                            (
                                scn.name,
                                curve.label,
                                _fmt(p.rate),
                                _fmt(r.offered_rate),
                                _fmt(r.effective_offered),
                                _fmt(r.accepted_rate),
                                _fmt(r.avg_latency),
                                _fmt(r.p50_latency),
                                _fmt(r.p99_latency),
                                _fmt(r.avg_hops),
                                "1" if r.saturated else "0",
                            )
                        )
                    )
        return "\n".join(lines) + "\n"
