"""``repro.api`` — the scenario-level facade over the experiment engine.

This is the recommended entry point for reproducing the paper's
evaluation or composing new comparative experiments:

* :class:`Scenario` / :class:`Study` describe campaigns declaratively
  (and round-trip to the JSON scenario files under ``scenarios/``);
* :meth:`Study.run` executes them through the parallel experiment
  engine and returns the structured :class:`StudyResult` ->
  :class:`ScenarioResult` -> :class:`PointResult` hierarchy with
  ``to_json()`` / ``to_csv()`` export and text rendering;
* :func:`build_study` / :func:`list_library` expose the bundled
  Figs. 10-14 scenario library plus the resilience scenario family;
* :func:`compare_scenario` assembles ad-hoc architecture comparisons
  (the engine behind ``repro-dragonfly compare``);
* :func:`resilience_study` / :func:`resilience_report` /
  :func:`verify_study_faults` build, condense and deadlock-verify
  throughput-under-failure campaigns over the :mod:`repro.faults` axis.

Quickstart::

    from repro.api import build_study

    result = build_study("fig10_local", scale="quick").run(workers=4)
    print(result.render())
    result.save("fig10_local.json")

or file-based::

    from repro.api import load_study

    result = load_study("scenarios/fig10_local.json").run(workers=4)

Resilience::

    from repro.api import build_study, resilience_report

    result = build_study("resilience", scale="quick").run(workers=4)
    print(resilience_report(result).render())
"""

from ..metrics import MetricChannel, build_probe, list_probes
from .compare import compare_scenario
from .library import (
    SCALES,
    build_study,
    dragonfly_arch,
    library_studies,
    list_library,
    make_spec,
    pick_rates,
    register_study,
    save_library,
    sim_params,
    switchless_arch,
)
from .resilience import (
    DEFAULT_FAILURE_RATES,
    ResilienceReport,
    resilience_arches,
    resilience_report,
    resilience_study,
    verify_study_faults,
)
from .results import (
    STUDY_RESULT_SCHEMA,
    CurveResult,
    PointResult,
    ScenarioResult,
    StudyResult,
)
from .scenario import (
    SCENARIO_SCHEMA,
    STUDY_SCHEMA,
    Scenario,
    Study,
    StudyPointCallback,
    load_study,
)

__all__ = [
    "DEFAULT_FAILURE_RATES",
    "SCALES",
    "SCENARIO_SCHEMA",
    "STUDY_RESULT_SCHEMA",
    "STUDY_SCHEMA",
    "CurveResult",
    "MetricChannel",
    "PointResult",
    "ResilienceReport",
    "Scenario",
    "ScenarioResult",
    "Study",
    "StudyPointCallback",
    "StudyResult",
    "build_probe",
    "build_study",
    "compare_scenario",
    "list_probes",
    "dragonfly_arch",
    "library_studies",
    "list_library",
    "load_study",
    "make_spec",
    "pick_rates",
    "register_study",
    "resilience_arches",
    "resilience_report",
    "resilience_study",
    "save_library",
    "sim_params",
    "switchless_arch",
]
