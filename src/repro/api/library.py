"""Bundled scenario library: the paper's Figs. 10-14 as declarative
studies, plus a tiny ``smoke`` study for CI.

Every entry is a builder ``fn(scale) -> Study`` registered under the
figure's name; :func:`build_study` realises one, :func:`save_library`
writes the whole library to ``scenarios/*.json`` files (regenerate with
``python -m repro.api.library scenarios``).  The ``scale`` knob trades
system size and simulated cycles for wall-clock:

``quick``
    smoke-level: thinned rate lists, short windows, fewer panels;
``default``
    CI-scale structural equivalents (the ``small_equiv`` systems);
``full``
    the paper-exact configurations and Table IV cycle counts.

The builders carry the exact architecture fragments the figure
benchmarks used to hand-roll (switch-based Dragonfly baseline with an
ideal-router ``vc_spread=2`` emulation, the switch-less system and its
2B/4B bandwidth variants), so ``benchmarks/bench_fig10..14`` are now
thin wrappers over ``build_study(name, scale).run()``.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..engine import ExperimentSpec
from ..engine.spec import suggest
from ..network.params import SimParams
from .scenario import Scenario, Study

__all__ = [
    "SCALES",
    "build_study",
    "dragonfly_arch",
    "library_studies",
    "list_library",
    "make_spec",
    "pick_rates",
    "register_study",
    "save_library",
    "sim_params",
    "switchless_arch",
]

SCALES = ("quick", "default", "full")


def sim_params(scale: str = "default", seed: int = 11) -> SimParams:
    """Simulation windows per scale (``full`` = paper Table IV)."""
    _check_scale(scale)
    if scale == "full":
        return SimParams(seed=seed)  # Table IV: 5000 + 10000 cycles
    if scale == "quick":
        return SimParams(
            warmup_cycles=150, measure_cycles=400, drain_cycles=200,
            seed=seed,
        )
    return SimParams(
        warmup_cycles=300, measure_cycles=900, drain_cycles=400, seed=seed
    )


def pick_rates(
    rates: Sequence[float], scale: str = "default", quick_count: int = 3
) -> List[float]:
    """Thin a rate list under the quick scale."""
    rates = list(rates)
    if scale == "quick" and len(rates) > quick_count:
        step = max(1, len(rates) // quick_count)
        rates = rates[::step]
    return rates


def _check_scale(scale: str) -> None:
    if scale not in SCALES:
        raise ValueError(f"unknown scale {scale!r}; choose from {SCALES}")


# ----------------------------------------------------------------------
# architecture fragments (make_spec(**arch) keyword bundles)
# ----------------------------------------------------------------------

#: Fig. 10(a)/14(a) intra-C-group contenders.
MESH_ARCH = {
    "topology": "mesh", "topology_opts": {"dim": 4, "chiplet_dim": 2},
    "routing": "xy_mesh",
}
SWITCH_ARCH = {
    "topology": "switch",
    "topology_opts": {"num_terminals": 4, "terminal_latency": 1},
    "routing": "switch_star",
}


def dragonfly_arch(mode: str = "minimal", **topology_opts) -> Dict:
    """Switch-based baseline (ideal router emulated via vc_spread=2)."""
    return {
        "topology": "dragonfly", "topology_opts": topology_opts,
        "routing": "dragonfly",
        "routing_opts": {"mode": mode, "vc_spread": 2},
    }


def switchless_arch(mode: str = "minimal", **topology_opts) -> Dict:
    """The paper's switch-less Dragonfly."""
    return {
        "topology": "switchless", "topology_opts": topology_opts,
        "routing": "switchless", "routing_opts": {"mode": mode},
    }


def make_spec(
    label: str,
    *,
    topology: str,
    routing: str,
    traffic: str,
    rates: Sequence[float],
    params: SimParams,
    scale: str = "default",
    topology_opts: Optional[Dict] = None,
    routing_opts: Optional[Dict] = None,
    traffic_opts: Optional[Dict] = None,
    faults: Optional[Dict] = None,
    metrics=None,
    workload: str = "",
    workload_opts: Optional[Dict] = None,
) -> ExperimentSpec:
    """Labelled :meth:`ExperimentSpec.create` with scale-thinned rates."""
    return ExperimentSpec.create(
        topology=topology,
        topology_opts=topology_opts,
        routing=routing,
        routing_opts=routing_opts,
        traffic=traffic,
        traffic_opts=traffic_opts,
        params=params,
        rates=pick_rates(rates, scale),
        label=label,
        faults=faults,
        metrics=metrics,
        workload=workload,
        workload_opts=workload_opts,
    )


# ----------------------------------------------------------------------
# the registry
# ----------------------------------------------------------------------
_LIBRARY: Dict[str, Callable[[str], Study]] = {}


def register_study(name: str) -> Callable:
    """Register ``fn(scale) -> Study`` as a bundled library entry."""

    def deco(fn: Callable[[str], Study]) -> Callable[[str], Study]:
        if name in _LIBRARY:
            raise ValueError(f"study {name!r} is already registered")
        _LIBRARY[name] = fn
        return fn

    return deco


def list_library() -> List[str]:
    """Names of the bundled studies."""
    return sorted(_LIBRARY)


def build_study(name: str, scale: str = "default") -> Study:
    """Realise one bundled study at the given scale."""
    _check_scale(scale)
    try:
        builder = _LIBRARY[name]
    except KeyError:
        raise ValueError(
            f"unknown library study {name!r}"
            f"{suggest(name, list_library())}; "
            f"bundled: {list_library()}"
        ) from None
    return builder(scale)


def library_studies(scale: str = "default") -> List[Study]:
    return [build_study(name, scale) for name in list_library()]


def save_library(
    directory: Union[str, Path], scale: str = "default"
) -> List[Path]:
    """Write every bundled study to ``<directory>/<name>.json``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    return [
        build_study(name, scale).save(directory / f"{name}.json")
        for name in list_library()
    ]


# ----------------------------------------------------------------------
# Fig. 10(a-b): intra-C-group, 2D mesh vs switch
# ----------------------------------------------------------------------
@register_study("fig10_intra_cgroup")
def _fig10_intra_cgroup(scale: str) -> Study:
    params = sim_params(scale)

    def panel(name, title, traffic, rates, note):
        specs = [
            make_spec(
                "Switch", traffic=traffic, rates=rates, params=params,
                scale=scale, **SWITCH_ARCH,
            ),
            make_spec(
                "2D-Mesh", traffic=traffic, rates=rates, params=params,
                scale=scale, **MESH_ARCH,
            ),
        ]
        return Scenario(
            name=name, specs=tuple(specs), title=title, note=note,
            baseline="Switch", stop_after_saturation=2,
        )

    return Study(
        name="fig10_intra_cgroup",
        title="Fig. 10(a-b): intra-C-group performance, 2D mesh vs switch",
        description=(
            "One radix-16-equivalent C-group (4x4 on-chip routers) "
            "against 4 chips on a non-blocking switch."
        ),
        tags=("figure",),
        scenarios=(
            panel(
                "uniform", "Fig. 10(a) intra-C-group: uniform", "uniform",
                [0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5],
                "paper: mesh ~3.0, switch ~1.0 flits/cycle/chip",
            ),
            panel(
                "bit-reverse", "Fig. 10(b) intra-C-group: bit-reverse",
                "bit_reverse", [0.4, 0.8, 1.2, 1.6, 2.0, 2.4],
                "paper: mesh ~2.0, switch <= 1.0 flits/cycle/chip",
            ),
        ),
    )


# ----------------------------------------------------------------------
# Fig. 10(c-f): local (intra-W-group) performance under four patterns
# ----------------------------------------------------------------------
_FIG10_LOCAL_PANELS = {
    "uniform": (
        "uniform", [0.3, 0.6, 0.9, 1.2, 1.6, 2.0],
        "paper Fig.10(c): SW-less saturates ~1.5x SW-based",
    ),
    "bit-reverse": (
        "bit_reverse", [0.3, 0.6, 0.9, 1.2, 1.6],
        "paper Fig.10(d): SW-less ~1.2-2x SW-based",
    ),
    "bit-shuffle": (
        "bit_shuffle", [0.1, 0.2, 0.3, 0.4, 0.5],
        "paper Fig.10(e): all bound by inter-C-group links",
    ),
    "bit-transpose": (
        "bit_transpose", [0.3, 0.6, 0.9, 1.2, 1.6],
        "paper Fig.10(f): SW-less ~1.2-2x SW-based",
    ),
}


@register_study("fig10_local")
def _fig10_local(scale: str) -> Study:
    params = sim_params(scale)
    wgroups = 41 if scale == "full" else 2
    sless = {"preset": "radix16_equiv", "num_wgroups": wgroups,
             "cgroups_per_wafer": 1}
    arches = {
        "SW-based": dragonfly_arch(preset="radix16", g=wgroups),
        "SW-less": switchless_arch(**sless),
        "SW-less-2B": switchless_arch(mesh_capacity=2, **sless),
    }
    names = list(_FIG10_LOCAL_PANELS)
    if scale == "quick":
        names = ["uniform", "bit-reverse"]
    scenarios = []
    for name in names:
        traffic, rates, note = _FIG10_LOCAL_PANELS[name]
        scenarios.append(
            Scenario(
                name=name,
                title=f"Fig. 10 local: {name}",
                note=note,
                baseline="SW-based",
                specs=tuple(
                    make_spec(
                        label, traffic=traffic,
                        traffic_opts={"scope": ("group", 0)},
                        rates=rates, params=params, scale=scale, **arch,
                    )
                    for label, arch in arches.items()
                ),
            )
        )
    return Study(
        name="fig10_local",
        title="Fig. 10(c-f): local (intra-W-group) performance",
        description=(
            "One W-group of the radix-16-equivalent system vs one group "
            "of the radix-16 Dragonfly, under four traffic patterns."
        ),
        tags=("figure",),
        scenarios=tuple(scenarios),
    )


# ----------------------------------------------------------------------
# Fig. 11: global performance
# ----------------------------------------------------------------------
@register_study("fig11_global")
def _fig11_global(scale: str) -> Study:
    params = sim_params(scale)
    dfly_preset = "radix16" if scale == "full" else "small_equiv"
    sless_preset = "radix16_equiv" if scale == "full" else "small_equiv"
    arches = {
        "SW-based": dragonfly_arch(preset=dfly_preset),
        "SW-less": switchless_arch(preset=sless_preset),
        "SW-less-2B": switchless_arch(
            preset=sless_preset, mesh_capacity=2
        ),
    }
    panels = (
        ("uniform", "uniform", [0.1, 0.25, 0.4, 0.55, 0.7, 0.85],
         "paper: SW-less slightly below SW-based; SW-less-2B above both"),
        ("bit-reverse", "bit_reverse", [0.1, 0.2, 0.3, 0.45, 0.6],
         "paper: same ordering as uniform"),
    )
    return Study(
        name="fig11_global",
        title="Fig. 11: global performance",
        description=(
            "Whole-system throughput; 2B removes the mesh-bisection "
            "bottleneck of Eq. 6."
        ),
        tags=("figure",),
        scenarios=tuple(
            Scenario(
                name=name,
                title=f"Fig. 11 global: {name}",
                note=note,
                baseline="SW-based",
                specs=tuple(
                    make_spec(
                        label, traffic=traffic, rates=rates, params=params,
                        scale=scale, **arch,
                    )
                    for label, arch in arches.items()
                ),
            )
            for name, traffic, rates, note in panels
        ),
    )


# ----------------------------------------------------------------------
# Fig. 12: performance scalability (radix-32 class system)
# ----------------------------------------------------------------------
@register_study("fig12_scalability")
def _fig12_scalability(scale: str) -> Study:
    params = sim_params(scale)

    def topo_opts(capacity: int) -> Dict:
        if scale == "full":
            return {"preset": "radix32_equiv", "mesh_capacity": capacity}
        return {
            "mesh_dim": 5, "chiplet_dim": 1, "num_local": 7,
            "num_global": 4, "num_wgroups": 8, "mesh_capacity": capacity,
        }

    def spec(label, cap, traffic_opts, rates):
        return make_spec(
            label, traffic="uniform", traffic_opts=traffic_opts,
            rates=rates, params=params, scale=scale,
            **switchless_arch(**topo_opts(cap)),
        )

    caps = {"SW-less": 1, "SW-less-2B": 2, "SW-less-4B": 4}
    local = Scenario(
        name="local",
        title="Fig. 12(a) large-scale local: uniform",
        note="paper: without 2B, large-scale local is below the "
        "small-scale case",
        baseline="SW-less",
        specs=tuple(
            spec(label, cap, {"scope": ("group", 0)},
                 [0.2, 0.4, 0.6, 0.9, 1.2])
            for label, cap in caps.items()
            if label != "SW-less-4B"
        ),
    )
    glob = Scenario(
        name="global",
        title="Fig. 12(b) large-scale global: uniform",
        note="paper: uniform-bandwidth heavily constrained; 2B/4B "
        "recover it",
        baseline="SW-less",
        stop_after_saturation=2,
        specs=tuple(
            spec(label, cap, None, [0.04, 0.08, 0.12, 0.18, 0.25])
            for label, cap in caps.items()
        ),
    )
    return Study(
        name="fig12_scalability",
        title="Fig. 12: performance scalability (large-scale system)",
        description=(
            "Bandwidth ablation on the radix-32-class switch-less system "
            "(starved C-group mesh bisection at default scale)."
        ),
        tags=("figure",),
        scenarios=(local, glob),
    )


# ----------------------------------------------------------------------
# Fig. 13: minimal vs non-minimal routing under adversarial traffic
# ----------------------------------------------------------------------
@register_study("fig13_misrouting")
def _fig13_misrouting(scale: str) -> Study:
    params = sim_params(scale)
    dfly_preset = "radix16" if scale == "full" else "small_equiv"
    sless_preset = "radix16_equiv" if scale == "full" else "small_equiv"
    arches = {
        "SW-based-Min": dragonfly_arch("minimal", preset=dfly_preset),
        "SW-less-Min": switchless_arch("minimal", preset=sless_preset),
        "SW-based-Mis": dragonfly_arch("valiant", preset=dfly_preset),
        "SW-less-Mis": switchless_arch("valiant", preset=sless_preset),
        "SW-less-2B-Mis": switchless_arch(
            "valiant", preset=sless_preset, mesh_capacity=2
        ),
    }
    panels = (
        ("hotspot", "hotspot", {"num_hot": 4},
         [0.05, 0.15, 0.3, 0.5, 0.7],
         "paper: misrouting saturates far above minimal; 2B helps further"),
        ("worst-case", "worst_case", None,
         [0.03, 0.08, 0.16, 0.26, 0.4],
         "paper: minimal collapses on the single W_i->W_i+1 channel"),
    )
    return Study(
        name="fig13_misrouting",
        title="Fig. 13: minimal vs Valiant routing, adversarial traffic",
        description=(
            "Hotspot and worst-case shift patterns; Valiant misrouting "
            "lifts saturation by an order of magnitude."
        ),
        tags=("figure",),
        scenarios=tuple(
            Scenario(
                name=name,
                title=f"Fig. 13 {name}",
                note=note,
                baseline="SW-based-Min",
                specs=tuple(
                    make_spec(
                        label, traffic=traffic, traffic_opts=traffic_opts,
                        rates=rates, params=params, scale=scale, **arch,
                    )
                    for label, arch in arches.items()
                ),
            )
            for name, traffic, traffic_opts, rates, note in panels
        ),
    )


# ----------------------------------------------------------------------
# Fig. 14: ring AllReduce within a C-group and within a W-group
# ----------------------------------------------------------------------
@register_study("fig14_allreduce")
def _fig14_allreduce(scale: str) -> Study:
    params = sim_params(scale)

    cg_specs = []
    cg_rates = [0.5, 1.0, 1.5, 2.0, 3.0, 4.0]
    for bi, tag in ((False, "Uni"), (True, "Bi")):
        cg_specs.append(
            make_spec(
                f"SW-based-{tag}", traffic="ring_allreduce",
                traffic_opts={"bidirectional": bi},
                rates=cg_rates, params=params, scale=scale, **SWITCH_ARCH,
            )
        )
        cg_specs.append(
            make_spec(
                f"SW-less-{tag}", traffic="ring_allreduce",
                traffic_opts={"bidirectional": bi, "scope": "snake"},
                rates=cg_rates, params=params, scale=scale, **MESH_ARCH,
            )
        )
    intra_cgroup = Scenario(
        name="intra-cgroup",
        title="Fig. 14(a) AllReduce intra-C-group",
        note="paper: SW-based 1 (uni=bi); SW-less 2 (uni) and 4 (bi)",
        baseline="SW-based-Uni",
        stop_after_saturation=2,
        specs=tuple(cg_specs),
    )

    wgroups = 41 if scale == "full" else 2
    wg_rates = [0.4, 0.8, 1.1, 1.5, 2.0]
    sless = {"preset": "radix16_equiv", "num_wgroups": wgroups,
             "cgroups_per_wafer": 1}
    dfly = dragonfly_arch(preset="radix16", g=wgroups)
    sless_arch = switchless_arch(**sless)
    sless2b_arch = switchless_arch(mesh_capacity=2, **sless)

    def ring(bi):
        return {"bidirectional": bi, "scope": ("group", 0)}

    wg_specs = []
    for bi, tag in ((False, "Uni"), (True, "Bi")):
        wg_specs.append(
            make_spec(
                f"SW-based-{tag}", traffic="ring_allreduce",
                traffic_opts=ring(bi), rates=wg_rates, params=params,
                scale=scale, **dfly,
            )
        )
        wg_specs.append(
            make_spec(
                f"SW-less-{tag}", traffic="ring_allreduce",
                traffic_opts=ring(bi), rates=wg_rates, params=params,
                scale=scale, **sless_arch,
            )
        )
    wg_specs.append(
        make_spec(
            "SW-less-Bi-2B", traffic="ring_allreduce",
            traffic_opts=ring(True), rates=wg_rates, params=params,
            scale=scale, **sless2b_arch,
        )
    )
    intra_wgroup = Scenario(
        name="intra-wgroup",
        title="Fig. 14(b) AllReduce intra-W-group",
        note="paper: both 1 uni; SW-less-Bi ~1.3; SW-less-Bi-2B ~2",
        baseline="SW-based-Uni",
        stop_after_saturation=2,
        specs=tuple(wg_specs),
    )
    return Study(
        name="fig14_allreduce",
        title="Fig. 14: ring-based AllReduce",
        description=(
            "Ring collectives inside one C-group and one W-group; the "
            "switch-less mesh's four injection ports per chip pay off."
        ),
        tags=("figure",),
        scenarios=(intra_cgroup, intra_wgroup),
    )


# ----------------------------------------------------------------------
# CI smoke study: seconds, not minutes
# ----------------------------------------------------------------------
@register_study("smoke")
def _smoke(scale: str) -> Study:
    params = SimParams(
        warmup_cycles=100, measure_cycles=250, drain_cycles=150, seed=11
    )
    scenario = Scenario(
        name="mesh-vs-switch",
        title="Smoke: one C-group mesh vs switch, uniform",
        note="tiny sanity scenario for CI and the test suite",
        baseline="Switch",
        specs=(
            make_spec(
                "Switch", traffic="uniform", rates=[0.3, 0.6],
                params=params, scale=scale, **SWITCH_ARCH,
            ),
            make_spec(
                "2D-Mesh", traffic="uniform", rates=[0.3, 0.6],
                params=params, scale=scale, **MESH_ARCH,
            ),
        ),
    )
    return Study(
        name="smoke",
        title="CI smoke study",
        description="Runs in seconds at every scale.",
        tags=("smoke",),
        scenarios=(scenario,),
    )


# ----------------------------------------------------------------------
# resilience studies: throughput under failure (repro.faults)
# ----------------------------------------------------------------------
@register_study("resilience")
def _resilience(scale: str) -> Study:
    """Failure-rate x load sweep, switch-less vs switch-based Dragonfly.

    The fault axis is the per-channel failure probability (``random``
    model, fixed seed); report the run with
    :func:`repro.api.resilience_report`.
    """
    from .resilience import resilience_study  # late: avoids import cycle

    failure_rates = (0.0, 0.02, 0.05, 0.1)
    rates = [0.1, 0.25, 0.4, 0.55]
    if scale == "quick":
        failure_rates = (0.0, 0.05)
        rates = [0.15, 0.4]
    return resilience_study(
        name="resilience",
        arches=("switchless", "dragonfly"),
        failure_rates=failure_rates,
        rates=rates,
        preset="small_equiv",
        params=sim_params(scale),
        scale=scale,
    )


#: tiny architectures for the resilience smoke study: a 4-W-group
#: switch-less system of 3x3 C-groups vs a 4-group p=2 Dragonfly.
_RESILIENCE_SMOKE_ARCHES = {
    "SW-less": {
        "topology": "switchless",
        "topology_opts": {
            "mesh_dim": 3, "chiplet_dim": 1, "num_local": 2,
            "num_global": 1,
        },
        "routing": "switchless",
        "routing_opts": {"mode": "minimal"},
    },
    "SW-based": {
        "topology": "dragonfly",
        "topology_opts": {"p": 2, "a": 3, "h": 1},
        "routing": "dragonfly",
        "routing_opts": {"mode": "minimal", "vc_spread": 2},
    },
}


@register_study("resilience_smoke")
def _resilience_smoke(scale: str) -> Study:
    """Seconds-scale fault sweep for CI: 2 failure rates x 2 loads."""
    from .resilience import resilience_study  # late: avoids import cycle

    params = SimParams(
        warmup_cycles=100, measure_cycles=250, drain_cycles=150, seed=11
    )
    study = resilience_study(
        name="resilience_smoke",
        arches=_RESILIENCE_SMOKE_ARCHES,
        failure_rates=(0.0, 0.08),
        rates=[0.15, 0.35],
        params=params,
        scale=scale,
    )
    return Study(
        name=study.name,
        title="CI resilience smoke: tiny fault sweep",
        description="Runs in seconds at every scale.",
        tags=("resilience", "smoke"),
        scenarios=study.scenarios,
    )


# ----------------------------------------------------------------------
# closed-loop application workloads (repro.workload)
# ----------------------------------------------------------------------

#: the application-level channels every closed-loop study ships with.
_WORKLOAD_METRICS = ("cct", "bubble", "overlap")


@register_study("workload")
def _workload(scale: str) -> Study:
    """Closed-loop collective completion times on the switch-less fabric.

    Two questions, one spec grid: how do ring and hierarchical
    allreduce schedules compare at equal message volume (Fig. 14's
    collective, driven closed-loop), and how much completion time does
    a degraded wafer cost the same collective?  Rates are pacing
    bandwidths (flits/cycle/chip); every spec carries the ``cct`` /
    ``bubble`` / ``overlap`` channels.
    """
    params = sim_params(scale)
    wgroups = 41 if scale == "full" else 2
    sless = switchless_arch(
        preset="radix16_equiv", num_wgroups=wgroups, cgroups_per_wafer=1
    )
    rates = pick_rates([0.25, 0.5, 1.0], scale, quick_count=2)
    volume = 256 if scale == "full" else 64
    scope = {"scope": ("group", 0)}

    def spec(label, workload, *, faults=None, opts=None):
        return make_spec(
            label, traffic="uniform", traffic_opts=scope, rates=rates,
            params=params, scale=scale, faults=faults,
            metrics=_WORKLOAD_METRICS, workload=workload,
            workload_opts={"volume": volume, **(opts or {})}, **sless,
        )

    schedules = Scenario(
        name="schedules",
        title="Closed-loop allreduce: ring vs tree vs hierarchical",
        note=(
            "same message volume, three schedules; the cct channel's "
            "makespan is the figure of merit"
        ),
        baseline="Ring",
        specs=(
            spec("Ring", "ring_allreduce"),
            spec("Tree", "tree_allreduce"),
            spec("Hierarchical", "hierarchical_allreduce"),
        ),
    )
    degraded = Scenario(
        name="degraded-fabric",
        title="Closed-loop ring allreduce: healthy vs degraded wafer",
        note=(
            "masked packets shrink the collective; completion time "
            "still reflects rerouted traffic on the surviving links"
        ),
        baseline="Healthy",
        specs=(
            spec("Healthy", "ring_allreduce"),
            spec(
                "Degraded", "ring_allreduce",
                # failed channels force reroutes; dead dies mask their
                # share of the collective (cct reports both effects)
                faults={
                    "model": "random", "link_rate": 0.05,
                    "die_rate": 0.15, "seed": 7,
                },
            ),
        ),
    )
    return Study(
        name="workload",
        title="Closed-loop application workloads (CCT)",
        description=(
            "Dependency-graph collectives driven closed-loop over the "
            "switch-less W-group; completion time, bubble fraction and "
            "compute/comm overlap per phase schedule."
        ),
        tags=("workload",),
        scenarios=(schedules, degraded),
    )


@register_study("workload_smoke")
def _workload_smoke(scale: str) -> Study:
    """Seconds-scale closed-loop study for CI: one C-group mesh."""
    params = SimParams(
        warmup_cycles=100, measure_cycles=250, drain_cycles=150, seed=11
    )
    rates = [0.25, 0.5]

    def spec(label, workload, **kw):
        return make_spec(
            label, traffic="uniform", rates=rates, params=params,
            scale=scale, metrics=_WORKLOAD_METRICS, workload=workload,
            workload_opts={"volume": 32}, **MESH_ARCH, **kw,
        )

    scenario = Scenario(
        name="ring-vs-hierarchical",
        title="Workload smoke: closed-loop allreduce on one C-group",
        note="tiny closed-loop sanity scenario for CI and the tests",
        baseline="Ring",
        specs=(
            spec("Ring", "ring_allreduce"),
            spec("Hierarchical", "hierarchical_allreduce"),
        ),
    )
    return Study(
        name="workload_smoke",
        title="CI workload smoke study",
        description="Closed-loop collectives in seconds at every scale.",
        tags=("workload", "smoke"),
        scenarios=(scenario,),
    )


def main(argv=None) -> int:  # pragma: no cover - exercised via CLI tests
    parser = argparse.ArgumentParser(
        prog="python -m repro.api.library",
        description="write the bundled scenario library to JSON files",
    )
    parser.add_argument("directory", help="output directory")
    parser.add_argument("--scale", choices=SCALES, default="default")
    args = parser.parse_args(argv)
    for path in save_library(args.directory, scale=args.scale):
        print(path)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
