"""Routing interface and path validation helpers."""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Iterable, List, Optional, Sequence, Tuple

from ..network.packet import Hop
from ..topology.graph import NetworkGraph

__all__ = ["RoutingAlgorithm", "validate_path", "path_latency"]


class RoutingAlgorithm(ABC):
    """Produces source routes ``[(link id, vc), ...]`` for packets.

    ``num_vcs`` is the number of virtual channels the simulator must
    provision on every link; it is the quantity the paper's Sec. IV
    minimises.
    """

    #: virtual channels required for deadlock freedom.
    num_vcs: int = 1

    #: True when :meth:`route` never consults the RNG, i.e. the route of
    #: a (src, dst) pair is a pure function of the pair.  The simulator
    #: memoises routes for such algorithms — a large win for oblivious
    #: minimal routing, where every packet of a pair shares one path.
    is_deterministic: bool = False

    #: memo entry cap for :meth:`route_flat`; beyond it routes are
    #: computed without being stored, bounding memory on full-scale
    #: systems (100k+ nodes -> billions of pairs) where the routing
    #: object lives across every point of a sweep.
    route_memo_max: int = 1 << 19

    @abstractmethod
    def route(self, src: int, dst: int, rng: random.Random) -> List[Hop]:
        """One (possibly randomised) route from ``src`` to ``dst``."""

    def route_flat(
        self, src: int, dst: int, rng: random.Random
    ) -> "Tuple[Tuple[Hop, ...], Tuple[int, ...]]":
        """``(path, path_lv)`` where ``path_lv[i] = link*num_vcs + vc``.

        The flat view is what the simulator's hot loop indexes with.
        Deterministic algorithms memoise per (src, dst) pair on the
        routing object itself, so the memo survives across the many
        simulator instances of a load sweep.
        """
        if not self.is_deterministic:
            path = tuple(self.route(src, dst, rng))
            V = self.num_vcs
            return path, tuple(l * V + v for l, v in path)
        memo = getattr(self, "_route_memo", None)
        if memo is None:
            memo = self._route_memo = {}
        hit = memo.get((src, dst))
        if hit is None:
            path = tuple(self.route(src, dst, rng))
            V = self.num_vcs
            hit = (path, tuple(l * V + v for l, v in path))
            if len(memo) < self.route_memo_max:
                memo[(src, dst)] = hit
        return hit

    def enumerate_routes(self, src: int, dst: int) -> Iterable[List[Hop]]:
        """All routes the algorithm may produce for this pair.

        Used by the deadlock verifier to build the full channel
        dependency graph.  Deterministic algorithms yield one path; the
        default draws a fixed sample of randomised routes, which
        subclasses with enumerable choice sets should override.
        """
        rng = random.Random(0xC0FFEE ^ (src * 1_000_003) ^ dst)
        seen = set()
        for _ in range(16):
            path = tuple(self.route(src, dst, rng))
            if path not in seen:
                seen.add(path)
                yield list(path)


def validate_path(
    graph: NetworkGraph,
    src: int,
    dst: int,
    path: Sequence[Hop],
    *,
    num_vcs: Optional[int] = None,
) -> None:
    """Raise ValueError unless ``path`` is a connected src->dst walk.

    Checks: consecutive links share endpoints, the walk starts at ``src``
    and ends at ``dst``, and VC indices are within range.
    """
    cur = src
    for i, (lid, vc) in enumerate(path):
        if not 0 <= lid < graph.num_links:
            raise ValueError(f"hop {i}: link {lid} out of range")
        link = graph.links[lid]
        if link.src != cur:
            raise ValueError(
                f"hop {i}: link {lid} starts at {link.src}, expected {cur}"
            )
        if vc < 0 or (num_vcs is not None and vc >= num_vcs):
            raise ValueError(f"hop {i}: vc {vc} out of range")
        cur = link.dst
    if cur != dst:
        raise ValueError(f"path ends at {cur}, expected {dst}")


def path_latency(graph: NetworkGraph, path: Sequence[Hop], router_latency: int = 1) -> int:
    """Zero-load wire+pipeline latency of a head flit along ``path``."""
    return sum(graph.links[lid].latency + router_latency for lid, _ in path)
