"""Channel-dependency-graph (CDG) deadlock verification.

Dally & Seitz: a routing function is deadlock free on a network with
credit-based flow control if the directed graph whose vertices are
``(link, virtual channel)`` pairs and whose edges connect consecutive
channels used by some packet is acyclic.  The switch-less Dragonfly's
whole Sec. IV is about making this graph acyclic with few VCs, so the
reproduction ships an explicit checker used throughout the test suite.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from itertools import islice
from typing import Iterable, List, Optional, Sequence, Tuple

import networkx as nx

from ..network.packet import Hop
from ..topology.graph import NetworkGraph
from .base import RoutingAlgorithm, validate_path

__all__ = ["DeadlockReport", "channel_dependency_graph", "verify_deadlock_free"]


@dataclass
class DeadlockReport:
    """Outcome of a CDG acyclicity check."""

    acyclic: bool
    num_channels: int
    num_dependencies: int
    pairs_checked: int
    #: one dependency cycle as [(link, vc), ...] when not acyclic.
    cycle: Optional[List[Tuple[int, int]]] = None

    def __bool__(self) -> bool:
        return self.acyclic

    def describe(self, graph: Optional[NetworkGraph] = None) -> str:
        if self.acyclic:
            return (
                f"deadlock-free: {self.num_channels} channels, "
                f"{self.num_dependencies} dependencies, "
                f"{self.pairs_checked} pairs"
            )
        lines = [f"DEADLOCK RISK: cycle of {len(self.cycle or [])} channels"]
        if self.cycle and graph is not None:
            for lid, vc in self.cycle:
                link = graph.links[lid]
                lines.append(
                    f"  link {lid} vc {vc}: {link.src}->{link.dst} "
                    f"({link.klass})"
                )
        return "\n".join(lines)


def _iter_pairs(
    graph: NetworkGraph,
    pairs: Optional[Iterable[Tuple[int, int]]],
    max_pairs: Optional[int],
    rng: random.Random,
) -> List[Tuple[int, int]]:
    if pairs is None:
        terms = graph.terminals()
        all_pairs = [
            (s, d) for s in terms for d in terms if s != d
        ]
    else:
        all_pairs = list(pairs)
    if max_pairs is not None and len(all_pairs) > max_pairs:
        all_pairs = rng.sample(all_pairs, max_pairs)
    return all_pairs


def channel_dependency_graph(
    graph: NetworkGraph,
    routing: RoutingAlgorithm,
    *,
    pairs: Optional[Iterable[Tuple[int, int]]] = None,
    max_pairs: Optional[int] = None,
    validate: bool = True,
    seed: int = 0,
) -> Tuple[nx.DiGraph, int]:
    """Build the CDG over all (sampled) source/destination pairs.

    Returns ``(cdg, pairs_checked)``.  Every route produced by
    ``routing.enumerate_routes`` contributes its consecutive-hop edges.
    """
    rng = random.Random(seed)
    cdg = nx.DiGraph()
    checked = _iter_pairs(graph, pairs, max_pairs, rng)
    for src, dst in checked:
        for path in routing.enumerate_routes(src, dst):
            if validate:
                validate_path(graph, src, dst, path, num_vcs=routing.num_vcs)
            for a, b in zip(path, islice(path, 1, None)):
                cdg.add_edge(a, b)
            for hop in path:
                cdg.add_node(hop)
    return cdg, len(checked)


def verify_deadlock_free(
    graph: NetworkGraph,
    routing: RoutingAlgorithm,
    *,
    pairs: Optional[Iterable[Tuple[int, int]]] = None,
    max_pairs: Optional[int] = None,
    seed: int = 0,
) -> DeadlockReport:
    """Check the routing function's CDG for cycles.

    With ``pairs=None`` every ordered terminal pair is enumerated —
    exhaustive and exact for deterministic routings; use ``max_pairs`` to
    sample on very large systems.
    """
    cdg, checked = channel_dependency_graph(
        graph, routing, pairs=pairs, max_pairs=max_pairs, seed=seed
    )
    try:
        cycle_edges = nx.find_cycle(cdg, orientation="original")
        cycle = [edge[0] for edge in cycle_edges]
        acyclic = False
    except nx.NetworkXNoCycle:
        cycle = None
        acyclic = True
    return DeadlockReport(
        acyclic=acyclic,
        num_channels=cdg.number_of_nodes(),
        num_dependencies=cdg.number_of_edges(),
        pairs_checked=checked,
        cycle=cycle,
    )
