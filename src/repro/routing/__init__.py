"""Routing algorithms and deadlock verification."""

from .base import RoutingAlgorithm, path_latency, validate_path
from .deadlock import DeadlockReport, channel_dependency_graph, verify_deadlock_free
from .dragonfly import DragonflyRouting
from .mesh import SwitchStarRouting, XYMeshRouting, xy_links
from .switchless import SwitchlessRouting

__all__ = [
    "RoutingAlgorithm",
    "path_latency",
    "validate_path",
    "DeadlockReport",
    "channel_dependency_graph",
    "verify_deadlock_free",
    "DragonflyRouting",
    "SwitchStarRouting",
    "XYMeshRouting",
    "xy_links",
]
