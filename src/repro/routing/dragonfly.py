"""Minimal and Valiant routing for the switch-based Dragonfly baseline.

Virtual channel assignment follows Kim et al. [3]: every channel on the
path is assigned ``VC = number of global hops already taken``.  Minimal
routes take at most one global hop (2 VCs); Valiant non-minimal routes at
most two (3 VCs).  The resulting channel dependency graph is acyclic
because VC indices never decrease along a path and, within one VC, the
hop sequence terminal -> local -> global is acyclic per group.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional

from ..network.packet import Hop
from ..topology.dragonfly import DragonflySystem
from .base import RoutingAlgorithm

__all__ = ["DragonflyRouting"]


class DragonflyRouting(RoutingAlgorithm):
    """Oblivious routing on a :class:`DragonflySystem`.

    Parameters
    ----------
    system:
        The built Dragonfly.
    mode:
        ``"minimal"`` (``t-l-g-l-t`` worst case) or ``"valiant"``
        (random intermediate group, ``t-l-g-l-g-l-t`` worst case).

    ``vc_spread`` gives each VC *class* (``ghops`` value) that many
    physical VCs, with packets spread across them by destination.  This
    emulates the paper's "ideal high-radix router" baseline by removing
    most FIFO head-of-line blocking; deadlock freedom is preserved because
    a path's VC class never decreases, so the flattened VC index
    ``ghops * spread + hash`` never re-enters an earlier class.
    """

    def __init__(
        self,
        system: DragonflySystem,
        mode: str = "minimal",
        *,
        vc_spread: int = 1,
    ):
        if mode not in ("minimal", "valiant"):
            raise ValueError(f"unknown mode {mode!r}")
        if vc_spread < 1:
            raise ValueError("vc_spread must be >= 1")
        self.system = system
        self.mode = mode
        self.vc_spread = vc_spread
        self.num_classes = 2 if mode == "minimal" else 3
        # minimal routes never consult the RNG (Valiant draws the
        # intermediate group from it)
        self.is_deterministic = mode == "minimal"
        self.num_vcs = self.num_classes * vc_spread

    # ------------------------------------------------------------------
    def _route_via(
        self, src: int, dst: int, intermediate: Optional[int]
    ) -> List[Hop]:
        sys = self.system
        g = sys.graph
        gs = sys.group_of(src)
        gd = sys.group_of(dst)
        ss = sys.switch_index_of(src)
        sd = sys.switch_index_of(dst)

        hops: List[Hop] = []
        ghops = 0
        spread = self.vc_spread
        salt = dst % spread

        def vc() -> int:
            return ghops * spread + salt

        # injection: terminal -> its switch
        cur_group, cur_sw = gs, ss
        hops.append((g.link_between(src, sys.switches[gs][ss]), vc()))

        group_seq = [gs]
        if intermediate is not None and intermediate not in (gs, gd):
            group_seq.append(intermediate)
        if gd != gs:
            group_seq.append(gd)

        prev_group = gs
        for nxt in group_seq[1:]:
            gw = sys.gateway_switch(cur_group, nxt)
            if gw != cur_sw:
                hops.append((
                    g.link_between(
                        sys.switches[cur_group][cur_sw],
                        sys.switches[cur_group][gw],
                    ),
                    vc(),
                ))
                cur_sw = gw
            hops.append((sys.global_link(cur_group, nxt), vc()))
            ghops += 1
            prev_group = cur_group
            cur_group = nxt
            cur_sw = sys.gateway_switch(cur_group, prev_group)

        if cur_sw != sd:
            hops.append((
                g.link_between(
                    sys.switches[cur_group][cur_sw],
                    sys.switches[cur_group][sd],
                ),
                vc(),
            ))
            cur_sw = sd

        # ejection: switch -> destination terminal
        hops.append((g.link_between(sys.switches[gd][sd], dst), vc()))
        return hops

    def route(self, src: int, dst: int, rng: random.Random) -> List[Hop]:
        gs = self.system.group_of(src)
        gd = self.system.group_of(dst)
        intermediate: Optional[int] = None
        if self.mode == "valiant" and gs != gd and self.system.num_groups > 2:
            choices = self.system.num_groups - 2
            pick = rng.randrange(choices)
            # skip gs and gd while keeping the draw uniform
            for skip in sorted((gs, gd)):
                if pick >= skip:
                    pick += 1
            intermediate = pick
        return self._route_via(src, dst, intermediate)

    def enumerate_routes(self, src: int, dst: int) -> Iterable[List[Hop]]:
        gs = self.system.group_of(src)
        gd = self.system.group_of(dst)
        yield self._route_via(src, dst, None)
        if self.mode == "valiant" and gs != gd:
            for gi in range(self.system.num_groups):
                if gi not in (gs, gd):
                    yield self._route_via(src, dst, gi)
