"""Routing for the switch-less Dragonfly (paper Sec. IV, Algorithm 1).

Minimal routing performs the seven steps of Algorithm 1: route within the
source C-group to the node holding the right local channel, cross to the
gateway C-group, route to its global port, cross to the destination
W-group, route to the local port toward the destination C-group, cross,
and deliver.  Non-minimal (Valiant) routing inserts a random intermediate
W-group, adding two inter-C-group and two intra-C-group steps.

Two virtual-channel policies are provided:

``baseline``
    Sec. IV-A: the VC index is the ordinal of the C-group along the path
    (incremented at every C-group boundary).  Four VCs suffice for
    minimal routing (source, two intermediates, destination C-group) and
    six for non-minimal.  All intra-C-group segments use XY routing.
    Provably deadlock free: within one VC, inter-C-group links only
    *feed* mesh segments (the next link is already on the next VC), and
    XY unions are acyclic.

``reduced``
    Sec. IV-B: VC-0 carries *mesh-only* segments (source C-group exit
    and final delivery), VC-1 the source-W-group transit, VC-2 the
    destination-W-group transit — 3 VCs for minimal routing, one more
    than the traditional Dragonfly's two, exactly the paper's headline.
    Non-minimal routing with ``misroute_scope="any"`` gives the
    intermediate W-group its own VC-2 (destination shifts to VC-3):
    4 VCs, again one more than the traditional Dragonfly's three.
    Transit segments walk the C-group boundary monotonically in label
    order (Property 1(c2)/Property 2), which keeps up- and down-typed
    mesh channels disjoint inside merged W-groups; delivery (port->core)
    segments share the destination VC and use *dive-first* paths
    (:meth:`repro.core.cgroup.CGroup.delivery_links`) that leave the
    boundary ring immediately, so they are link-disjoint from transit
    walks except at corner destinations.  This is the closest provable
    approximation of the paper's Property 1(c1), which no strict total
    node order can fully satisfy on a mesh (see
    :mod:`repro.core.labeling`); the test suite therefore checks the
    reduced policy's CDG explicitly for every shipped configuration and
    EXPERIMENTS.md records the results.  ``misroute_scope="lower"``
    implements the paper's 3-VC non-minimal variant (misroute only
    through W-groups with a label-monotone continuation; falls back to
    minimal when none qualifies).  For a configuration where the 3-VC
    reduction is provably safe by construction, see the IO-router
    C-group variant (Fig. 8(a)) in :mod:`repro.core`.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Tuple

from ..core.system import SwitchlessSystem
from ..network.packet import Hop
from .base import RoutingAlgorithm

__all__ = ["SwitchlessRouting"]


class SwitchlessRouting(RoutingAlgorithm):
    """Oblivious minimal / Valiant routing on a :class:`SwitchlessSystem`.

    Parameters
    ----------
    system:
        The built switch-less Dragonfly.
    mode:
        ``"minimal"`` or ``"valiant"``.
    policy:
        ``"baseline"`` (ordinal VCs, XY everywhere) or ``"reduced"``
        (paper Sec. IV-B VC reduction).
    misroute_scope:
        Only with ``policy="reduced", mode="valiant"``: ``"any"`` (extra
        VC for the intermediate W-group) or ``"lower"`` (no extra VC,
        intermediates restricted to label-monotone continuations; falls
        back to minimal when no intermediate qualifies —
        :attr:`fallback_count` tracks how often).
    """

    def __init__(
        self,
        system: SwitchlessSystem,
        mode: str = "minimal",
        *,
        policy: str = "baseline",
        misroute_scope: str = "any",
    ) -> None:
        if mode not in ("minimal", "valiant"):
            raise ValueError(f"unknown mode {mode!r}")
        if policy not in ("baseline", "reduced"):
            raise ValueError(f"unknown policy {policy!r}")
        if misroute_scope not in ("any", "lower"):
            raise ValueError(f"unknown misroute_scope {misroute_scope!r}")
        self.system = system
        self.mode = mode
        self.policy = policy
        self.misroute_scope = misroute_scope
        self.fallback_count = 0
        # minimal routes never consult the RNG (Valiant draws the
        # intermediate W-group from it)
        self.is_deterministic = mode == "minimal"
        if policy == "baseline":
            self.num_vcs = 4 if mode == "minimal" else 6
        else:
            if mode == "minimal":
                self.num_vcs = 3
            else:
                self.num_vcs = 4 if misroute_scope == "any" else 3

    # ------------------------------------------------------------------
    # segment helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _mesh_xy(hops: List[Hop], cg, a: int, b: int, vc: int) -> None:
        for lid in cg.route_links(a, b):
            hops.append((lid, vc))

    @staticmethod
    def _mesh_walk(hops: List[Hop], cg, a: int, b: int, vc: int) -> None:
        for lid in cg.transit_links(a, b):
            hops.append((lid, vc))

    @staticmethod
    def _mesh_delivery(hops: List[Hop], cg, a: int, b: int, vc: int) -> None:
        for lid in cg.delivery_links(a, b):
            hops.append((lid, vc))

    # ------------------------------------------------------------------
    # baseline policy: ordinal VCs, XY everywhere
    # ------------------------------------------------------------------
    def _route_baseline(
        self, src: int, dst: int, wseq: List[int]
    ) -> List[Hop]:
        """Route through the W-group sequence ``wseq`` (src W first)."""
        sys = self.system
        ws, cs = sys.location_of(src)
        wd, cd = sys.location_of(dst)
        hops: List[Hop] = []
        ordinal = 0
        cur_node = src
        cur_w, cur_c = ws, cs

        for nxt_w in wseq[1:]:
            gw = sys.gateway_cgroup(cur_w, nxt_w)
            if gw != cur_c:
                ch = sys.local_channel(cur_w, cur_c, gw)
                self._mesh_xy(
                    hops, sys.cgroup(cur_w, cur_c), cur_node,
                    ch.src_port.attach, ordinal,
                )
                ordinal += 1
                hops.append((ch.link, ordinal))
                cur_node = ch.dst_port.attach
                cur_c = gw
            gch = sys.global_channel(cur_w, nxt_w)
            self._mesh_xy(
                hops, sys.cgroup(cur_w, cur_c), cur_node,
                gch.src_port.attach, ordinal,
            )
            ordinal += 1
            hops.append((gch.link, ordinal))
            cur_node = gch.dst_port.attach
            cur_w = nxt_w
            cur_c = sys.location_of(cur_node)[1]

        if cur_c != cd:
            ch = sys.local_channel(cur_w, cur_c, cd)
            self._mesh_xy(
                hops, sys.cgroup(cur_w, cur_c), cur_node,
                ch.src_port.attach, ordinal,
            )
            ordinal += 1
            hops.append((ch.link, ordinal))
            cur_node = ch.dst_port.attach
            cur_c = cd
        self._mesh_xy(hops, sys.cgroup(cur_w, cur_c), cur_node, dst, ordinal)
        return hops

    # ------------------------------------------------------------------
    # reduced policy: Sec. IV-B VC reduction
    # ------------------------------------------------------------------
    def _route_reduced(
        self, src: int, dst: int, wseq: List[int], merged_vcs: bool
    ) -> List[Hop]:
        """Reduced-VC route through W-group sequence ``wseq``.

        ``merged_vcs`` merges intermediate and destination W-groups on
        VC-2 (the "lower" scope); otherwise the intermediate W-group uses
        VC-2 and the destination W-group VC-3 when a misroute happens.
        """
        sys = self.system
        ws, cs = sys.location_of(src)
        wd, cd = sys.location_of(dst)
        hops: List[Hop] = []
        cur_node = src
        cur_w, cur_c = ws, cs
        misrouted = len(wseq) > 2

        # ---- source W-group: VC-0 mesh exit, VC-1 transit -------------
        if len(wseq) > 1:
            nxt_w = wseq[1]
            gw = sys.gateway_cgroup(cur_w, nxt_w)
            if gw != cur_c:
                ch = sys.local_channel(cur_w, cur_c, gw)
                self._mesh_xy(
                    hops, sys.cgroup(cur_w, cur_c), cur_node,
                    ch.src_port.attach, 0,
                )
                hops.append((ch.link, 1))
                cur_node = ch.dst_port.attach
                cur_c = gw
                gch = sys.global_channel(cur_w, nxt_w)
                self._mesh_xy(
                    hops, sys.cgroup(cur_w, cur_c), cur_node,
                    gch.src_port.attach, 1,
                )
            else:
                gch = sys.global_channel(cur_w, nxt_w)
                self._mesh_xy(
                    hops, sys.cgroup(cur_w, cur_c), cur_node,
                    gch.src_port.attach, 0,
                )
            # the global channel enters the next W-group's transit VC
            hops.append((gch.link, 2))
            cur_node = gch.dst_port.attach
            cur_w = nxt_w
            cur_c = sys.location_of(cur_node)[1]

            # ---- intermediate W-group (valiant only): VC-2 transit ----
            if misrouted:
                dest_vc = 2 if merged_vcs else 3
                nxt_w = wseq[2]
                gw = sys.gateway_cgroup(cur_w, nxt_w)
                if gw != cur_c:
                    ch = sys.local_channel(cur_w, cur_c, gw)
                    self._mesh_walk(
                        hops, sys.cgroup(cur_w, cur_c), cur_node,
                        ch.src_port.attach, 2,
                    )
                    hops.append((ch.link, 2))
                    cur_node = ch.dst_port.attach
                    cur_c = gw
                gch = sys.global_channel(cur_w, nxt_w)
                self._mesh_walk(
                    hops, sys.cgroup(cur_w, cur_c), cur_node,
                    gch.src_port.attach, 2,
                )
                hops.append((gch.link, dest_vc))
                cur_node = gch.dst_port.attach
                cur_w = nxt_w
                cur_c = sys.location_of(cur_node)[1]
            else:
                dest_vc = 2
        else:
            dest_vc = 2  # intra-W-group traffic enters the dest VC directly

        # ---- destination W-group: transit + dive-first delivery -------
        if cur_c != cd:
            ch = sys.local_channel(cur_w, cur_c, cd)
            if cur_w == ws and cur_c == cs:
                # intra-W-group: exit the source C-group on VC-0/XY
                self._mesh_xy(
                    hops, sys.cgroup(cur_w, cur_c), cur_node,
                    ch.src_port.attach, 0,
                )
            else:
                self._mesh_walk(
                    hops, sys.cgroup(cur_w, cur_c), cur_node,
                    ch.src_port.attach, dest_vc,
                )
            hops.append((ch.link, dest_vc))
            cur_node = ch.dst_port.attach
            cur_c = cd
        self._mesh_delivery(
            hops, sys.cgroup(cur_w, cur_c), cur_node, dst, dest_vc
        )
        return hops

    # ------------------------------------------------------------------
    # "lower"-scope legality (paper Fig. 7 restriction)
    # ------------------------------------------------------------------
    def _lower_scope_legal(self, ws: int, wi: int, wd: int, cd: int) -> bool:
        """Whether misrouting via ``wi`` yields a label-monotone transit.

        The merged-VC variant requires each packet's whole VC-2 channel
        sequence to be up*-then-down* in (W-group, C-group, label) order:

        * all-up transit: ``ws < wi < wd`` and entry C-group <= exit
          C-group inside ``wi`` (the destination segment may then turn
          down — up*down* remains legal);
        * all-down transit: ``ws > wi > wd``, entry >= exit inside
          ``wi``, and the destination-W-group segment must stay down,
          i.e. the destination C-group must not be above the entry
          C-group there.
        """
        sys = self.system
        entry_c = sys.location_of(sys.global_channel(ws, wi).dst_port.attach)[1]
        exit_c = sys.gateway_cgroup(wi, wd)
        if ws < wi < wd:
            return entry_c <= exit_c
        if ws > wi > wd:
            if entry_c < exit_c:
                return False
            entry_cd = sys.location_of(
                sys.global_channel(wi, wd).dst_port.attach
            )[1]
            return cd <= entry_cd
        return False

    def _legal_intermediates(self, ws: int, wd: int, cd: int) -> List[int]:
        g = self.system.num_wgroups
        if self.misroute_scope == "any":
            return [w for w in range(g) if w not in (ws, wd)]
        return [
            w
            for w in range(g)
            if w not in (ws, wd) and self._lower_scope_legal(ws, w, wd, cd)
        ]

    # ------------------------------------------------------------------
    def _wseq(self, ws: int, wd: int, wi: Optional[int]) -> List[int]:
        seq = [ws]
        if wi is not None and wi not in (ws, wd):
            seq.append(wi)
        if wd != ws:
            seq.append(wd)
        return seq

    def _route_via(self, src: int, dst: int, wi: Optional[int]) -> List[Hop]:
        sys = self.system
        ws, cs = sys.location_of(src)
        wd, cd = sys.location_of(dst)
        if ws == wd and cs == cd:
            cg = sys.cgroup(ws, cs)
            return [(lid, 0) for lid in cg.route_links(src, dst)]
        wseq = self._wseq(ws, wd, wi)
        if self.policy == "baseline":
            return self._route_baseline(src, dst, wseq)
        return self._route_reduced(
            src, dst, wseq, merged_vcs=self.misroute_scope == "lower"
        )

    def route(self, src: int, dst: int, rng: random.Random) -> List[Hop]:
        sys = self.system
        ws, _ = sys.location_of(src)
        wd, _ = sys.location_of(dst)
        wi: Optional[int] = None
        wd2, cd = sys.location_of(dst)
        if self.mode == "valiant" and ws != wd and sys.num_wgroups > 2:
            choices = self._legal_intermediates(ws, wd, cd)
            if choices:
                wi = choices[rng.randrange(len(choices))]
            elif self.policy == "reduced" and self.misroute_scope == "lower":
                self.fallback_count += 1
        return self._route_via(src, dst, wi)

    def enumerate_routes(self, src: int, dst: int) -> Iterable[List[Hop]]:
        sys = self.system
        ws, _ = sys.location_of(src)
        wd, _ = sys.location_of(dst)
        yield self._route_via(src, dst, None)
        if self.mode == "valiant" and ws != wd:
            cd = sys.location_of(dst)[1]
            for wi in self._legal_intermediates(ws, wd, cd):
                yield self._route_via(src, dst, wi)
