"""Intra-mesh routing: dimension-order (XY) paths.

XY routing is deadlock free on a mesh with a single VC (all turns from X
to Y, never back), which is why the paper can spend its virtual channels
exclusively on breaking *cross-C-group* dependencies (Sec. IV-A).
"""

from __future__ import annotations

import random
from typing import Iterable, List

from ..network.packet import Hop
from ..topology.graph import NetworkGraph
from ..topology.mesh import MeshBlock, SwitchBlock, xy_links
from .base import RoutingAlgorithm

__all__ = ["xy_links", "XYMeshRouting", "SwitchStarRouting"]


class XYMeshRouting(RoutingAlgorithm):
    """Standalone XY routing for a single mesh block (Fig. 10(a))."""

    num_vcs = 1

    is_deterministic = True

    def __init__(self, block: MeshBlock):
        self.block = block

    def route(self, src: int, dst: int, rng: random.Random) -> List[Hop]:
        return [(lid, 0) for lid in xy_links(self.block, src, dst)]

    def enumerate_routes(self, src: int, dst: int) -> Iterable[List[Hop]]:
        yield self.route(src, dst, random.Random(0))


class SwitchStarRouting(RoutingAlgorithm):
    """Terminal -> switch -> terminal, for the single-switch baseline.

    ``voq_vcs > 1`` spreads packets over input VCs by destination,
    emulating the virtual-output-queueing of a non-blocking switch — the
    paper models its baseline switches as *ideal* high-radix routers
    (Sec. V-A4), so without this the baseline would be unfairly
    handicapped by FIFO head-of-line blocking.
    """

    is_deterministic = True

    def __init__(self, block: SwitchBlock, *, voq_vcs: int = 4):
        if voq_vcs < 1:
            raise ValueError("voq_vcs must be >= 1")
        self.block = block
        self.num_vcs = min(voq_vcs, len(block.terminals))
        self._term_index = {t: i for i, t in enumerate(block.terminals)}

    def route(self, src: int, dst: int, rng: random.Random) -> List[Hop]:
        g = self.block.graph
        sw = self.block.switch
        vc = self._term_index[dst] % self.num_vcs
        return [
            (g.link_between(src, sw), vc),
            (g.link_between(sw, dst), 0),
        ]

    def enumerate_routes(self, src: int, dst: int) -> Iterable[List[Hop]]:
        yield self.route(src, dst, random.Random(0))
