"""Fault-aware routing: reroute around failed links, provably deadlock-free.

:class:`FaultAwareRouting` wraps any base
:class:`~repro.routing.base.RoutingAlgorithm` (the switch-less or
Dragonfly routers included) against a
:class:`~repro.faults.degrade.DegradedTopology`:

* pairs whose base route survives keep it unchanged — same links, same
  virtual channels, so the healthy traffic keeps the base policy's
  VC-minimal behaviour and its deadlock-freedom proof;
* pairs whose base route crosses a failure are *repaired*: the packet
  takes a shortest **up*/down*** path over the whole surviving graph
  (not just a spanning tree, so the architecture's path diversity keeps
  working for rerouted flows), entirely on one extra **repair VC**.

Up*/down* direction comes from a deterministic BFS ordering per
surviving component: link ``u -> v`` is *up* iff ``(depth[v], v) <
(depth[u], u)``.  A legal repair path climbs up-links first and then
descends down-links, never turning down->up; a legal path always exists
within a component (climb the BFS tree to the common ancestor, descend).

Deadlock freedom of the union is compositional.  Base routes use VCs
``0..V-1`` and repair routes only VC ``V``, so the channel dependency
graph splits into two vertex-disjoint parts: the base CDG (acyclic per
the base policy) and the repair CDG.  In the repair CDG, up->up
dependencies strictly decrease the ordering potential, down->down
dependencies strictly increase it, up->down crossings exist but
down->up never does — so any cycle would have to be all-up or all-down,
both impossible: the repair CDG is acyclic.  The
:mod:`repro.routing.deadlock` verifier re-checks this on every degraded
instance in the test suite and the resilience CLI.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Tuple

from ..network.packet import Hop
from ..routing.base import RoutingAlgorithm
from .degrade import DegradedTopology

__all__ = ["FaultRoutingError", "FaultAwareRouting"]


class FaultRoutingError(ValueError):
    """A route was requested between disconnected or dead endpoints."""


class FaultAwareRouting(RoutingAlgorithm):
    """Wrap ``base`` so every produced route avoids failed hardware.

    Parameters
    ----------
    base:
        The healthy-topology routing algorithm.
    degraded:
        The degraded view routes must respect.

    Attributes
    ----------
    repair_vc:
        The extra virtual channel repair paths ride on (``base.num_vcs``).
    repaired_routes:
        How many route computations fell back to the repair tree.
    """

    def __init__(
        self, base: RoutingAlgorithm, degraded: DegradedTopology
    ) -> None:
        self.base = base
        self.degraded = degraded
        self.num_vcs = base.num_vcs + 1
        self.repair_vc = base.num_vcs
        self.is_deterministic = base.is_deterministic
        self.repaired_routes = 0
        # component id -> BFS depth per node (the up*/down* ordering)
        self._depths: Dict[int, Dict[int, int]] = {}

    # ------------------------------------------------------------------
    # up*/down* repair over the surviving graph
    # ------------------------------------------------------------------
    def _depth_map(self, comp: int) -> Dict[int, int]:
        depths = self._depths.get(comp)
        if depths is not None:
            return depths
        deg = self.degraded
        root = deg.component_members(comp)[0]
        depths = {root: 0}
        frontier = [root]
        while frontier:
            nxt: List[int] = []
            for cur in frontier:
                d = depths[cur] + 1
                for peer, _lid in deg.neighbors(cur):
                    if peer not in depths:
                        depths[peer] = d
                        nxt.append(peer)
            frontier = nxt
        self._depths[comp] = depths
        return depths

    def _repair(self, src: int, dst: int) -> List[Hop]:
        """Shortest up*/down* path src -> dst on the repair VC.

        BFS over ``(node, phase)`` states: phase 0 may still climb
        up-links, phase 1 has turned downward and may only descend.
        Expansion order is deterministic (sorted adjacency), so the
        route of a pair is a pure function of the fault instance.
        """
        deg = self.degraded
        depths = self._depth_map(deg.component_of(src))
        vc = self.repair_vc

        def is_up(u: int, v: int) -> bool:
            return (depths[v], v) < (depths[u], u)

        start = (src, 0)
        parent: Dict[Tuple[int, int], Tuple[Tuple[int, int], int]] = {
            start: (start, -1)
        }
        frontier = [start]
        goal: Optional[Tuple[int, int]] = None
        while frontier and goal is None:
            nxt: List[Tuple[int, int]] = []
            for state in frontier:
                u, phase = state
                for v, lid in deg.neighbors(u):
                    if is_up(u, v):
                        if phase == 1:  # down->up turns are illegal
                            continue
                        nstate = (v, 0)
                    else:
                        nstate = (v, 1)
                    if nstate in parent:
                        continue
                    parent[nstate] = (state, lid)
                    if v == dst:
                        goal = nstate
                        break
                    nxt.append(nstate)
                if goal is not None:
                    break
            frontier = nxt
        if goal is None:  # pragma: no cover - reachable pairs always have one
            raise FaultRoutingError(
                f"no up*/down* repair path {src}->{dst}"
            )
        hops: List[Hop] = []
        state = goal
        while state != start:
            state, lid = parent[state]
            hops.append((lid, vc))
        hops.reverse()
        return hops

    # ------------------------------------------------------------------
    # RoutingAlgorithm interface
    # ------------------------------------------------------------------
    def _check_pair(self, src: int, dst: int) -> None:
        deg = self.degraded
        if not deg.alive(src) or not deg.alive(dst):
            raise FaultRoutingError(
                f"route {src}->{dst} touches a failed die; mask traffic "
                "with FaultMaskedTraffic"
            )
        if not deg.reachable(src, dst):
            raise FaultRoutingError(
                f"nodes {src} and {dst} are in different surviving "
                "partitions; mask traffic with FaultMaskedTraffic"
            )

    def route(self, src: int, dst: int, rng: random.Random) -> List[Hop]:
        self._check_pair(src, dst)
        if src == dst:
            return []
        path = self.base.route(src, dst, rng)
        if self.degraded.path_ok(path):
            return path
        self.repaired_routes += 1
        return self._repair(src, dst)

    def enumerate_routes(self, src: int, dst: int) -> Iterable[List[Hop]]:
        """Surviving base routes, plus the repair path when any base
        candidate (or all of them) is severed.

        Dead or partitioned pairs yield nothing — the deadlock verifier
        enumerates all terminal pairs and must skip pairs the masked
        traffic would never generate.
        """
        deg = self.degraded
        if not deg.alive(src) or not deg.alive(dst):
            return
        if not deg.reachable(src, dst):
            return
        any_severed = False
        any_ok = False
        for path in self.base.enumerate_routes(src, dst):
            if deg.path_ok(path):
                any_ok = True
                yield path
            else:
                any_severed = True
        if any_severed or not any_ok:
            yield self._repair(src, dst)
