"""Realise a :class:`~repro.faults.spec.FaultSpec` against a built system.

Sampling is deterministic: a dedicated ``random.Random(spec.seed)``
stream is consumed in a fixed iteration order (channels by ascending
forward-link id, chips by ascending id, wafers by ascending id), so the
same ``(system, spec)`` pair always yields the same :class:`FaultSet` —
in this process, in a pool worker, or in a later session replaying the
cache.

Failure closure: a failed *channel* takes both directed links with it
(full-duplex PHYs share the physical medium), and a failed *die* takes
every node of the chip plus every channel attached to those nodes.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..layout import WaferMap
from ..topology.graph import NetworkGraph
from .spec import FaultSpec

__all__ = ["DefectCluster", "FaultSet", "channel_reverse", "sample_faults"]


@dataclass(frozen=True)
class DefectCluster:
    """One spatial defect cluster sampled by the yield model."""

    wafer: int
    x_mm: float
    y_mm: float
    radius_mm: float


@dataclass(frozen=True)
class FaultSet:
    """Concrete failures on one system instance (closure already applied)."""

    #: failed *directed* link ids (both directions of each dead channel).
    failed_links: FrozenSet[int]
    #: dead node ids (nodes of failed dies).
    failed_nodes: FrozenSet[int]
    #: failed chip (die) ids.
    failed_chips: FrozenSet[int]
    #: defect clusters that produced the failures (yield model only).
    defects: Tuple[DefectCluster, ...] = ()

    @classmethod
    def empty(cls) -> "FaultSet":
        return cls(frozenset(), frozenset(), frozenset())

    @property
    def is_empty(self) -> bool:
        return not (self.failed_links or self.failed_nodes)

    def describe(self) -> str:
        return (
            f"{len(self.failed_links) // 2} channel(s), "
            f"{len(self.failed_chips)} die(s), "
            f"{len(self.failed_nodes)} node(s) failed"
        )


def channel_reverse(graph: NetworkGraph, lid: int) -> int:
    """The reverse directed link of ``lid``'s full-duplex channel.

    Parallel channels between the same node pair are paired by index:
    the ``i``-th forward link corresponds to the ``i``-th reverse link,
    which holds for every builder because channels are added via
    :meth:`~repro.topology.graph.NetworkGraph.add_channel`.
    """
    link = graph.links[lid]
    fwd = graph.links_between(link.src, link.dst)
    rev = graph.links_between(link.dst, link.src)
    idx = fwd.index(lid)
    if idx >= len(rev):
        raise ValueError(f"link {lid} has no reverse channel half")
    return rev[idx]


def _fail_channel(graph: NetworkGraph, lid: int, failed: Set[int]) -> None:
    failed.add(lid)
    failed.add(channel_reverse(graph, lid))


def _fail_chips(
    graph: NetworkGraph,
    chips: Iterable[int],
    failed_links: Set[int],
    failed_nodes: Set[int],
    failed_chips: Set[int],
) -> None:
    """Die-failure closure: kill the chip's nodes and attached channels."""
    chip_nodes = graph.chips()
    for chip in chips:
        if chip not in chip_nodes:
            raise ValueError(f"chip {chip} does not exist in {graph.name}")
        failed_chips.add(chip)
        for nid in chip_nodes[chip]:
            failed_nodes.add(nid)
    for link in graph.links:
        if link.src in failed_nodes or link.dst in failed_nodes:
            failed_links.add(link.id)


def _forward_links(graph: NetworkGraph, classes: Tuple[str, ...]) -> List[int]:
    """Canonical (one-per-channel) link ids of the eligible classes.

    The canonical half is the one whose id is smaller than its
    reverse's, so every channel is considered exactly once, in a stable
    order.
    """
    out = []
    for link in graph.links:
        if link.klass not in classes:
            continue
        if link.id < channel_reverse(graph, link.id):
            out.append(link.id)
    return out


def _sample_random(
    graph: NetworkGraph, spec: FaultSpec, rng: random.Random
) -> FaultSet:
    failed_links: Set[int] = set()
    failed_nodes: Set[int] = set()
    failed_chips: Set[int] = set()
    if spec.link_rate > 0:
        for lid in _forward_links(graph, spec.link_classes):
            if rng.random() < spec.link_rate:
                _fail_channel(graph, lid, failed_links)
    if spec.die_rate > 0:
        dead = [
            chip
            for chip in sorted(graph.chips())
            if rng.random() < spec.die_rate
        ]
        _fail_chips(graph, dead, failed_links, failed_nodes, failed_chips)
    return FaultSet(
        frozenset(failed_links), frozenset(failed_nodes),
        frozenset(failed_chips),
    )


def _sample_fixed(graph: NetworkGraph, spec: FaultSpec) -> FaultSet:
    failed_links: Set[int] = set()
    failed_nodes: Set[int] = set()
    failed_chips: Set[int] = set()
    for a, b in spec.failed_channels:
        lids = graph.links_between(a, b)
        if not lids:
            raise ValueError(
                f"fixed fault names channel ({a}, {b}) but "
                f"{graph.name} has no link there"
            )
        for lid in lids:
            _fail_channel(graph, lid, failed_links)
    _fail_chips(
        graph, spec.failed_chips, failed_links, failed_nodes, failed_chips
    )
    return FaultSet(
        frozenset(failed_links), frozenset(failed_nodes),
        frozenset(failed_chips),
    )


def _disk_in_wafer(
    rng: random.Random, wafer_radius: float
) -> Tuple[float, float]:
    """Uniform defect centre within the wafer circle (rejection sampled)."""
    while True:
        x = rng.uniform(0.0, 2.0 * wafer_radius)
        y = rng.uniform(0.0, 2.0 * wafer_radius)
        if math.hypot(x - wafer_radius, y - wafer_radius) <= wafer_radius:
            return x, y


def _poisson(mean: float, rng: random.Random) -> int:
    """Knuth's product method; defect counts per wafer are tiny."""
    if mean <= 0:
        return 0
    limit = math.exp(-mean)
    n, prod = 0, rng.random()
    while prod > limit:
        n += 1
        prod *= rng.random()
    return n


def _sample_yield(
    system, spec: FaultSpec, rng: random.Random
) -> FaultSet:
    # defects map through the paper's Fig. 9 floorplan (WaferMap's
    # default CGroupLayoutSpec); custom floorplans would need a layout
    # axis on FaultSpec itself to stay cache-hashable
    graph: NetworkGraph = system.graph
    wmap = WaferMap(system)
    defects: List[DefectCluster] = []
    for wafer in range(wmap.num_wafers):
        for _ in range(_poisson(spec.defects_per_wafer, rng)):
            x, y = _disk_in_wafer(rng, wmap.wafer_radius_mm)
            defects.append(
                DefectCluster(wafer, x, y, spec.defect_radius_mm)
            )

    failed_links: Set[int] = set()
    failed_nodes: Set[int] = set()
    failed_chips: Set[int] = set()
    hit_nodes: Set[int] = set()
    dead_chips: Set[int] = set()
    for d in defects:
        hit_nodes.update(wmap.nodes_within(d.wafer, d.x_mm, d.y_mm, d.radius_mm))
        dead_chips.update(wmap.chips_within(d.wafer, d.x_mm, d.y_mm, d.radius_mm))
    # a defect over a node's site severs the PHYs there: every eligible
    # channel with an endpoint at a hit node dies
    for link in graph.links:
        if link.klass not in spec.link_classes:
            continue
        if link.src in hit_nodes or link.dst in hit_nodes:
            _fail_channel(graph, link.id, failed_links)
    _fail_chips(
        graph, sorted(dead_chips), failed_links, failed_nodes, failed_chips
    )
    return FaultSet(
        frozenset(failed_links), frozenset(failed_nodes),
        frozenset(failed_chips), tuple(defects),
    )


def sample_faults(system, spec: FaultSpec) -> FaultSet:
    """Sample the concrete :class:`FaultSet` of ``spec`` on ``system``.

    ``system`` is any built system object exposing ``.graph``; the
    ``yield`` model additionally needs the wafer-integrated switch-less
    system (it maps defects through :class:`repro.layout.WaferMap`).
    """
    graph: NetworkGraph = getattr(system, "graph", None) or system
    if not isinstance(graph, NetworkGraph):
        raise TypeError(f"cannot sample faults on {type(system).__name__}")
    if spec.is_null:
        return FaultSet.empty()
    rng = random.Random(spec.seed)
    if spec.model == "random":
        return _sample_random(graph, spec, rng)
    if spec.model == "fixed":
        return _sample_fixed(graph, spec)
    return _sample_yield(system, spec, rng)
