"""Declarative fault models for wafer-scale systems.

A :class:`FaultSpec` describes *which* failures to inject without naming
concrete link ids, so it can ride inside an
:class:`~repro.engine.ExperimentSpec` (as the frozen ``faults`` option
tuple), hash into cache keys, and rebuild identically inside a worker
process.  Realisation into concrete failed links/chips happens in
:mod:`repro.faults.inject` against a built system.

Three models (plus the null model):

``none``
    A perfect wafer; the default.  ``FaultSpec.null()`` / empty options.
``random``
    Independent failures: every eligible full-duplex *channel* fails
    with probability ``link_rate`` and every chip (die) with
    probability ``die_rate``, drawn from a dedicated ``seed`` so fault
    sampling never perturbs traffic/routing RNG streams.
``fixed``
    Explicit failure lists: ``failed_channels`` names (node_a, node_b)
    endpoint pairs, ``failed_chips`` names chip ids.  Deterministic by
    construction; used for regression scenarios and targeted studies.
``yield``
    Spatial defect clusters on the wafer: ``defects_per_wafer`` clusters
    (Poisson mean) of kill radius ``defect_radius_mm`` land on each
    wafer, mapped through :mod:`repro.layout` geometry to the dies and
    link PHYs they overlap (see :class:`repro.layout.WaferMap`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Sequence, Tuple

__all__ = ["FAULT_MODELS", "FaultSpec"]

#: recognised fault models.
FAULT_MODELS = ("none", "random", "fixed", "yield")

#: link classes eligible for random channel failures by default: every
#: on-wafer or long-reach transport channel.  ``onchip`` NoC hops and
#: ``terminal`` processor links are excluded — a broken chip is a *die*
#: failure, which the die/chip models cover.
DEFAULT_LINK_CLASSES = ("sr", "local", "global")


@dataclass(frozen=True)
class FaultSpec:
    """One reproducible fault scenario (see module docstring)."""

    model: str = "none"
    #: per-channel failure probability (``random`` model).
    link_rate: float = 0.0
    #: per-die failure probability (``random`` model).
    die_rate: float = 0.0
    #: RNG seed for fault sampling (independent of the sim seed).
    seed: int = 0
    #: link classes eligible for channel failures.
    link_classes: Tuple[str, ...] = DEFAULT_LINK_CLASSES
    #: ``fixed`` model: failed channels as (node_a, node_b) pairs.
    failed_channels: Tuple[Tuple[int, int], ...] = ()
    #: ``fixed`` model: failed chip (die) ids.
    failed_chips: Tuple[int, ...] = ()
    #: ``yield`` model: expected defect clusters per wafer (Poisson).
    defects_per_wafer: float = 0.0
    #: ``yield`` model: kill radius of one defect cluster (mm).
    defect_radius_mm: float = 8.0

    def __post_init__(self) -> None:
        if self.model not in FAULT_MODELS:
            raise ValueError(
                f"unknown fault model {self.model!r}; "
                f"expected one of {FAULT_MODELS}"
            )
        for name in ("link_rate", "die_rate"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {v}")
        if self.defects_per_wafer < 0:
            raise ValueError("defects_per_wafer must be >= 0")
        if self.defect_radius_mm <= 0:
            raise ValueError("defect_radius_mm must be > 0")
        for pair in self.failed_channels:
            if len(pair) != 2 or pair[0] == pair[1]:
                raise ValueError(
                    f"failed channel {pair!r} is not a (node_a, node_b) "
                    "pair of distinct nodes"
                )
        if self.model == "random" and not (self.link_rate or self.die_rate):
            raise ValueError(
                "random fault model needs link_rate > 0 or die_rate > 0"
            )
        if self.model == "fixed" and not (
            self.failed_channels or self.failed_chips
        ):
            raise ValueError(
                "fixed fault model needs failed_channels or failed_chips"
            )
        if self.model == "yield" and self.defects_per_wafer == 0:
            raise ValueError("yield fault model needs defects_per_wafer > 0")

    # ------------------------------------------------------------------
    @classmethod
    def null(cls) -> "FaultSpec":
        """The perfect-wafer spec."""
        return cls()

    @property
    def is_null(self) -> bool:
        return self.model == "none"

    def with_seed(self, seed: int) -> "FaultSpec":
        """Same fault law, different sample (for multi-instance sweeps)."""
        return replace(self, seed=seed)

    # -- declarative form ----------------------------------------------
    def to_data(self) -> Dict:
        """Keyword-dict view, the inverse of :meth:`from_opts`.

        Only non-default fields are emitted, so the null spec maps to an
        empty dict — exactly the ``ExperimentSpec`` ``faults={}`` form.
        """
        out: Dict = {}
        default = FaultSpec()
        for name in self.__dataclass_fields__:
            value = getattr(self, name)
            if value != getattr(default, name):
                out[name] = value
        return out

    @classmethod
    def from_opts(cls, opts: Dict) -> "FaultSpec":
        """Build (and validate) a spec from a keyword dict.

        Accepts the thawed option dicts of ``ExperimentSpec.faults``:
        sequence-valued fields arrive as lists or tuples and are
        normalised to tuples.
        """
        kwargs: Dict = {}
        for key, value in dict(opts).items():
            if key not in cls.__dataclass_fields__:
                raise ValueError(
                    f"unknown FaultSpec field {key!r}; known: "
                    f"{sorted(cls.__dataclass_fields__)}"
                )
            if key == "failed_channels":
                value = tuple(
                    tuple(int(n) for n in pair) for pair in value
                )
            elif key == "failed_chips":
                value = tuple(int(c) for c in value)
            elif key == "link_classes":
                value = tuple(str(c) for c in value)
            kwargs[key] = value
        return cls(**kwargs)

    def describe(self) -> str:
        if self.is_null:
            return "no faults"
        if self.model == "random":
            parts = []
            if self.link_rate:
                parts.append(f"{self.link_rate:.4g} link")
            if self.die_rate:
                parts.append(f"{self.die_rate:.4g} die")
            return f"random({', '.join(parts)}; seed={self.seed})"
        if self.model == "fixed":
            return (
                f"fixed({len(self.failed_channels)} channel(s), "
                f"{len(self.failed_chips)} chip(s))"
            )
        return (
            f"yield({self.defects_per_wafer:g}/wafer, "
            f"r={self.defect_radius_mm:g}mm; seed={self.seed})"
        )
