"""``repro.faults`` — yield-aware fault injection and degraded operation.

The paper's case for the switch-less Dragonfly leans on wafer-scale
integration surviving the defects wafer-scale silicon inevitably
carries; this package makes that a first-class, reproducible axis:

* :class:`FaultSpec` — deterministic, seedable fault models (independent
  link/die failure rates, fixed failure lists, and a yield-driven
  spatial defect model mapped through :mod:`repro.layout` geometry);
* :func:`sample_faults` / :class:`FaultSet` — concrete failed
  channels/dies on a built system, with full-duplex and die-failure
  closure applied;
* :class:`DegradedTopology` / :func:`degrade` — graph surgery as a view
  (ids stable), recomputed connectivity/partition/diameter/diversity
  properties;
* :class:`FaultAwareRouting` — healthy routes kept verbatim, severed
  routes repaired up*/down* on one extra VC, deadlock freedom preserved
  compositionally (and re-verified per instance);
* :class:`FaultMaskedTraffic` — failed-endpoint injection masking for
  the simulator cores.

:func:`apply_faults` bundles the last three — it is what the experiment
engine calls when an :class:`~repro.engine.ExperimentSpec` carries a
``faults`` axis::

    from repro.engine import ExperimentSpec

    spec = ExperimentSpec.create(
        topology="switchless", routing="switchless", traffic="uniform",
        topology_opts={"preset": "small_equiv"},
        faults={"model": "random", "link_rate": 0.05, "seed": 7},
        rates=[0.2, 0.4],
    )
"""

from __future__ import annotations

from typing import Optional, Tuple

from .degrade import DegradedTopology, degrade
from .inject import DefectCluster, FaultSet, channel_reverse, sample_faults
from .routing import FaultAwareRouting, FaultRoutingError
from .spec import FAULT_MODELS, FaultSpec
from .traffic import FaultMaskedTraffic

__all__ = [
    "FAULT_MODELS",
    "DefectCluster",
    "DegradedTopology",
    "FaultAwareRouting",
    "FaultMaskedTraffic",
    "FaultRoutingError",
    "FaultSet",
    "FaultSpec",
    "apply_faults",
    "channel_reverse",
    "degrade",
    "sample_faults",
]


def apply_faults(
    system,
    routing,
    traffic,
    spec: Optional[FaultSpec],
) -> Tuple[object, object, Optional[DegradedTopology]]:
    """Wrap ``(routing, traffic)`` for the fault scenario ``spec``.

    Returns ``(routing, traffic, degraded)`` — unchanged objects and
    ``None`` when the spec is null or absent, so healthy experiments pay
    nothing.  Already-wrapped inputs are left alone (the engine reuses
    wrapped routings across the points of a sweep).
    """
    if spec is None or spec.is_null:
        return routing, traffic, None
    degraded = degrade(system, spec)
    if not isinstance(routing, FaultAwareRouting):
        routing = FaultAwareRouting(routing, degraded)
    if not isinstance(traffic, FaultMaskedTraffic):
        traffic = FaultMaskedTraffic(traffic, degraded)
    return routing, traffic, degraded
