"""Failed-endpoint injection masking for the network simulator.

The simulator cores drop a packet-start event whenever the traffic
pattern returns ``dest(...) is None`` — that hook is the fault model's
injection mask.  :class:`FaultMaskedTraffic` wraps any
:class:`~repro.traffic.base.TrafficPattern` so that

* dead terminals never inject (they are removed from the active-node
  list, so the injection schedule samples no events for them at all);
* packets addressed to a dead or partitioned-away terminal are dropped
  at the source (``dest`` returns ``None``) instead of entering a
  network that cannot deliver them;
* offered load stays normalised per *surviving* chip, matching how the
  paper reports throughput under degradation.

The wrapper draws the base pattern's destination first and masks after,
so the stdlib RNG stream is consumed identically by every simulator
core — the property the cross-core equivalence harness asserts on
degraded instances too.
"""

from __future__ import annotations

import random
from typing import List, Optional

from .degrade import DegradedTopology

__all__ = ["FaultMaskedTraffic"]


class FaultMaskedTraffic:
    """A traffic pattern filtered through a degraded topology."""

    def __init__(self, base, degraded: DegradedTopology) -> None:
        self.base = base
        self.degraded = degraded
        self.name = f"{getattr(base, 'name', 'pattern')}+faults"
        self._active: List[int] = [
            nid for nid in base.active_nodes() if degraded.alive(nid)
        ]
        if not self._active:
            raise ValueError(
                "every traffic source in scope failed; nothing to simulate"
            )
        graph = degraded.graph
        self._active_chips = len(
            {graph.nodes[nid].chip for nid in self._active}
        )
        self.masked_dests = 0

    def active_nodes(self) -> List[int]:
        return self._active

    def num_active_chips(self) -> int:
        return self._active_chips

    #: masking happens per destination in :meth:`dest`, so the base
    #: pattern's vectorized ``dest_batch`` hook must not leak through
    #: ``__getattr__`` — a dead destination would bypass the mask.  The
    #: class attribute shadows the delegation and declines the hook.
    dest_batch = None

    def dest(self, src: int, rng: random.Random) -> Optional[int]:
        dst = self.base.dest(src, rng)
        if dst is None:
            return None
        deg = self.degraded
        if not deg.alive(dst) or not deg.reachable(src, dst):
            self.masked_dests += 1
            return None
        return dst

    def __getattr__(self, name):
        # delegate anything else (graph, index, ...) to the base pattern
        return getattr(self.base, name)
