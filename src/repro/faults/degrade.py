"""Degraded-topology construction: graph surgery plus health reporting.

A :class:`DegradedTopology` is a *view* over the healthy
:class:`~repro.topology.graph.NetworkGraph`: node and link ids are
unchanged (routes, simulator arrays and caches keep working), failed
links and nodes are simply excluded from adjacency, reachability and
route legality.  On top of the view it recomputes the properties the
paper's resilience argument rests on — connectivity, partitioning,
diameter and path-diversity loss — and exposes the BFS machinery the
fault-aware repair routing uses.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

from ..topology.graph import NetworkGraph
from ..topology.properties import (
    component_summary,
    pair_path_diversity,
    surviving_networkx,
)
from .inject import FaultSet, sample_faults
from .spec import FaultSpec

__all__ = ["DegradedTopology", "degrade"]


class DegradedTopology:
    """A healthy graph minus a :class:`~repro.faults.inject.FaultSet`."""

    def __init__(self, graph: NetworkGraph, faults: FaultSet) -> None:
        self.graph = graph
        self.faults = faults
        self.failed_links = faults.failed_links
        self.failed_nodes = faults.failed_nodes

        # surviving directed adjacency: node -> [(peer, link id)], one
        # entry per adjacent peer carrying the lowest-id surviving
        # channel (parallel channels between the same pair — none in the
        # shipped topologies, which scale bandwidth via link *capacity*
        # — would collapse onto that one for repair routing), peers in
        # ascending order for deterministic BFS trees
        adj: Dict[int, List[Tuple[int, int]]] = {
            n.id: [] for n in graph.nodes if n.id not in self.failed_nodes
        }
        for link in graph.links:
            if link.id in self.failed_links:
                continue
            if link.src in self.failed_nodes or link.dst in self.failed_nodes:
                continue
            entries = adj[link.src]
            if not any(peer == link.dst for peer, _ in entries):
                entries.append((link.dst, link.id))
        for entries in adj.values():
            entries.sort()
        self._adj = adj

        # connected components over surviving channels
        self._component: Dict[int, int] = {}
        self._comp_members: List[List[int]] = []
        for nid in sorted(adj):
            if nid in self._component:
                continue
            comp = len(self._comp_members)
            members = [nid]
            self._component[nid] = comp
            queue = deque([nid])
            while queue:
                cur = queue.popleft()
                for peer, _lid in adj[cur]:
                    if peer not in self._component:
                        self._component[peer] = comp
                        members.append(peer)
                        queue.append(peer)
            self._comp_members.append(sorted(members))

    # ------------------------------------------------------------------
    # the view
    # ------------------------------------------------------------------
    def alive(self, nid: int) -> bool:
        return nid not in self.failed_nodes

    def link_ok(self, lid: int) -> bool:
        return lid not in self.failed_links

    def path_ok(self, path: Sequence[Tuple[int, int]]) -> bool:
        """Whether a ``[(link, vc), ...]`` route avoids every failure."""
        failed = self.failed_links
        return all(lid not in failed for lid, _vc in path)

    def reachable(self, a: int, b: int) -> bool:
        ca = self._component.get(a)
        return ca is not None and ca == self._component.get(b)

    def component_of(self, nid: int) -> Optional[int]:
        return self._component.get(nid)

    def component_members(self, comp: int) -> List[int]:
        return self._comp_members[comp]

    @property
    def num_components(self) -> int:
        return len(self._comp_members)

    def neighbors(self, nid: int) -> List[Tuple[int, int]]:
        """Surviving ``(peer, link id)`` adjacency of ``nid`` (sorted)."""
        return self._adj.get(nid, [])

    def alive_terminals(self) -> List[int]:
        return [t for t in self.graph.terminals() if self.alive(t)]

    # ------------------------------------------------------------------
    # recomputed properties
    # ------------------------------------------------------------------
    def to_networkx(self):
        """Undirected surviving channel graph (for analysis)."""
        return surviving_networkx(
            self.graph,
            failed_links=self.failed_links,
            failed_nodes=self.failed_nodes,
        )

    def properties(
        self,
        *,
        diameter_limit: int = 4096,
        diversity_pairs: int = 12,
        seed: int = 0,
    ) -> Dict[str, object]:
        """Connectivity / partition / diameter / diversity report.

        ``diameter_limit`` bounds the exact-diameter computation (it is
        O(V*E)); larger graphs report ``None``.  Path-diversity loss is
        the mean link-disjoint path count over sampled alive terminal
        pairs, healthy vs degraded.
        """
        graph = self.graph
        num_channels = graph.num_links // 2
        failed_channels = len(self.failed_links) // 2
        g = self.to_networkx()
        summary = component_summary(g, graph.terminals())

        diameter = avg_path = None
        comps = self._comp_members
        if comps:
            largest = max(comps, key=len)
            if len(largest) <= diameter_limit:
                import networkx as nx

                sub = g.subgraph(largest)
                diameter = nx.diameter(sub) if len(sub) > 1 else 0
                avg_path = (
                    nx.average_shortest_path_length(sub)
                    if len(sub) > 1
                    else 0.0
                )

        terms = self.alive_terminals()
        pairs = [
            (terms[i], terms[(i + len(terms) // 2) % len(terms)])
            for i in range(min(len(terms), diversity_pairs))
            if terms[i] != terms[(i + len(terms) // 2) % len(terms)]
        ]
        healthy = surviving_networkx(graph)
        diversity = pair_path_diversity(
            g, pairs, max_pairs=diversity_pairs, seed=seed
        )
        diversity_healthy = pair_path_diversity(
            healthy, pairs, max_pairs=diversity_pairs, seed=seed
        )

        return {
            "failed_channels": failed_channels,
            "failed_channel_fraction": (
                failed_channels / num_channels if num_channels else 0.0
            ),
            "failed_nodes": len(self.failed_nodes),
            "failed_chips": len(self.faults.failed_chips),
            "diameter": diameter,
            "average_shortest_path": avg_path,
            "path_diversity": diversity,
            "path_diversity_healthy": diversity_healthy,
            "path_diversity_loss": (
                1.0 - diversity / diversity_healthy
                if diversity_healthy
                else 0.0
            ),
            **summary,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DegradedTopology({self.graph.name!r}, "
            f"{self.faults.describe()}, "
            f"{self.num_components} component(s))"
        )


# ----------------------------------------------------------------------
# memoised construction (one degraded instance per (system, spec) pair)
# ----------------------------------------------------------------------
#: (id(system), spec) -> (system, DegradedTopology).  The strong system
#: reference keeps the id stable while the entry lives; bounded LRU-ish
#: eviction keeps the memo tiny (the executor holds at most 4 systems).
_MEMO: Dict[Tuple[int, FaultSpec], Tuple[object, DegradedTopology]] = {}
_MEMO_MAX = 8


def degrade(system, spec: FaultSpec) -> DegradedTopology:
    """Sample ``spec`` on ``system`` and build the degraded view.

    Memoised per ``(system instance, spec)`` so the engine's per-point
    rebuilds share one BFS/component computation per fault instance.
    """
    key = (id(system), spec)
    hit = _MEMO.get(key)
    if hit is not None:
        return hit[1]
    graph = getattr(system, "graph", system)
    degraded = DegradedTopology(graph, sample_faults(system, spec))
    if len(_MEMO) >= _MEMO_MAX:
        _MEMO.pop(next(iter(_MEMO)))
    _MEMO[key] = (system, degraded)
    return degraded
