"""PHY and IO models used by the C-group layout (Sec. V-A1).

Numbers follow the paper's citations: UCIe 1.1 advanced package
(55 um bump pitch, 5 um line space, 64 lanes per module at 32 Gb/s)
[41], OIF CEI-112G long-reach SerDes [42, 47], and standard-packaging
connector pitch >= 0.3 mm [64-66].
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PhySpec", "UCIE_X64", "SERDES_112G_LR", "ConnectorSpec",
           "OPTICAL_CONNECTOR"]


@dataclass(frozen=True)
class PhySpec:
    """One PHY module type placed along a chiplet or C-group edge."""

    name: str
    lanes: int
    gbps_per_lane: float
    #: die-edge length one module occupies (mm).
    edge_mm: float
    #: module depth (mm).
    depth_mm: float
    #: whether the lanes are differential pairs (2 wires/lane).
    differential: bool

    @property
    def bandwidth_gbps(self) -> float:
        return self.lanes * self.gbps_per_lane

    def modules_for_bandwidth(self, gbps: float) -> int:
        return -(-int(gbps) // int(self.bandwidth_gbps))


#: UCIe advanced-package 64-lane module at 32 Gb/s: ~2 Tb/s per module,
#: about 0.8 mm of die edge (1317 GB/s/mm edge density [41]).
UCIE_X64 = PhySpec(
    name="UCIe-x64",
    lanes=64,
    gbps_per_lane=32.0,
    edge_mm=0.8,
    depth_mm=1.2,
    differential=False,
)

#: CEI-112G-LR SerDes lane bundle used for off-wafer channels.
SERDES_112G_LR = PhySpec(
    name="112G-LR-SerDes",
    lanes=8,
    gbps_per_lane=112.0,
    edge_mm=1.0,
    depth_mm=2.0,
    differential=True,
)


@dataclass(frozen=True)
class ConnectorSpec:
    """Off-wafer bonding pad / connector / socket geometry."""

    name: str
    pitch_mm: float

    def pads_per_mm2(self) -> float:
        return 1.0 / (self.pitch_mm * self.pitch_mm)


OPTICAL_CONNECTOR = ConnectorSpec("optical-module", pitch_mm=0.3)
