"""C-group floorplan on the wafer (Fig. 9, Sec. V-A1).

Places chiplets, SR-LR conversion modules and off-wafer IO pad fields for
one C-group and recomputes the paper's feasibility numbers:

* 16 chiplets of ~12 mm x 12 mm with 6 channels per edge;
* 128 UCIe lanes (two x64 PHYs) per on-wafer channel -> 4096 Gb/s/port;
* 8 lanes of 112G SerDes per off-C-group channel -> 896 Gb/s/port;
* a ~60 mm x 60 mm C-group leading out 1536 differential pairs;
* 12 TB/s mesh bisection and ~21 TB/s aggregate off-C-group bandwidth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List

from .geometry import Rect, fits_in_circle, no_overlaps
from .phy import (
    OPTICAL_CONNECTOR,
    SERDES_112G_LR,
    UCIE_X64,
    ConnectorSpec,
    PhySpec,
)

__all__ = ["CGroupLayoutSpec", "CGroupLayout", "plan_cgroup_layout"]

#: wafer diameter (mm).
WAFER_DIAMETER_MM = 300.0


@dataclass(frozen=True)
class CGroupLayoutSpec:
    """Physical parameters of one C-group (defaults = Fig. 9)."""

    #: chiplets per C-group side.
    chiplets_per_side: int = 4
    #: chiplet dimensions (mm).
    chiplet_mm: float = 12.0
    #: spacing between chiplets (mm) for PHY shoreline + routing.
    spacing_mm: float = 3.0
    #: interconnection channels per chiplet edge.
    channels_per_edge: int = 6
    #: UCIe x64 modules per on-wafer channel (2 -> 128 lanes).
    ucie_modules_per_channel: int = 2
    #: SR-LR conversion module dimensions (mm).
    conv_module_mm: tuple = (2.0, 3.0)
    onwafer_phy: PhySpec = UCIE_X64
    offwafer_phy: PhySpec = SERDES_112G_LR
    connector: ConnectorSpec = OPTICAL_CONNECTOR

    @property
    def num_chiplets(self) -> int:
        return self.chiplets_per_side ** 2

    @property
    def onwafer_channel_gbps(self) -> float:
        return self.ucie_modules_per_channel * self.onwafer_phy.bandwidth_gbps

    @property
    def offwafer_channel_gbps(self) -> float:
        return self.offwafer_phy.bandwidth_gbps


@dataclass
class CGroupLayout:
    """A placed-and-checked C-group floorplan."""

    spec: CGroupLayoutSpec
    chiplets: List[Rect]
    conversion_modules: List[Rect]
    io_field: Rect
    #: C-group bounding box edge (mm).
    edge_mm: float
    #: perimeter chiplet-edge count (off-C-group channel positions).
    perimeter_edges: int

    # -- derived bandwidth/IO figures -----------------------------------
    @property
    def offwafer_channels(self) -> int:
        return self.perimeter_edges * self.spec.channels_per_edge

    @property
    def offwafer_diff_pairs(self) -> int:
        """TX+RX differential pairs led off-wafer."""
        return self.offwafer_channels * self.spec.offwafer_phy.lanes * 2

    @property
    def bisection_tbps(self) -> float:
        """Full-duplex mesh bisection bandwidth (TB/s, one direction
        counted per the paper: channels crossing the cut x port rate)."""
        s = self.spec
        cut_channels = s.chiplets_per_side * s.channels_per_edge
        return cut_channels * s.onwafer_channel_gbps / 8e3

    @property
    def aggregate_tbps(self) -> float:
        """Aggregate off-C-group bandwidth, both directions (TB/s)."""
        return self.offwafer_channels * self.spec.offwafer_channel_gbps * 2 / 8e3

    @property
    def io_pads(self) -> int:
        """Total off-wafer IOs incl. ~75% power/ground overhead (the
        paper quotes ~5500 IOs for 1536 signal pairs)."""
        signals = self.offwafer_diff_pairs * 2
        return int(signals * 1.8)

    def feasible(self) -> bool:
        """All placement rules hold and the C-group fits the wafer."""
        rects = self.chiplets + self.conversion_modules
        if not no_overlaps(rects):
            return False
        if self.edge_mm > WAFER_DIAMETER_MM / math.sqrt(2):
            return False  # a C-group must fit a quarter-ish of the wafer
        # IO pad field must have room for all pads at connector pitch
        pads_possible = self.io_field.area * self.spec.connector.pads_per_mm2()
        return pads_possible >= self.offwafer_diff_pairs

    def summary(self) -> Dict[str, float]:
        return {
            "edge_mm": self.edge_mm,
            "chiplets": len(self.chiplets),
            "offwafer_channels": self.offwafer_channels,
            "offwafer_diff_pairs": self.offwafer_diff_pairs,
            "onwafer_channel_gbps": self.spec.onwafer_channel_gbps,
            "offwafer_channel_gbps": self.spec.offwafer_channel_gbps,
            "bisection_tbps": self.bisection_tbps,
            "aggregate_tbps": self.aggregate_tbps,
            "io_pads": self.io_pads,
        }


def plan_cgroup_layout(spec: CGroupLayoutSpec = CGroupLayoutSpec()) -> CGroupLayout:
    """Place one C-group: chiplet grid, SR-LR converters, IO pad field."""
    n = spec.chiplets_per_side
    pitch = spec.chiplet_mm + spec.spacing_mm
    edge = n * pitch + spec.spacing_mm

    chiplets: List[Rect] = []
    for r in range(n):
        for c in range(n):
            chiplets.append(Rect(
                f"chiplet-{r}-{c}",
                spec.spacing_mm + c * pitch,
                spec.spacing_mm + r * pitch,
                spec.chiplet_mm,
                spec.chiplet_mm,
            ))

    # SR-LR conversion modules ring the boundary: one per off-C-group
    # channel, packed along each side in the spacing band.
    conv_w, conv_h = spec.conv_module_mm
    per_side = n * spec.channels_per_edge
    modules: List[Rect] = []
    for side in range(4):
        for i in range(per_side):
            offset = spec.spacing_mm + i * (edge - 2 * spec.spacing_mm) / per_side
            if side == 0:  # top band
                modules.append(Rect(f"conv-t{i}", offset, 0.0, conv_w, conv_h))
            elif side == 1:  # bottom band
                modules.append(Rect(
                    f"conv-b{i}", offset, edge - conv_h, conv_w, conv_h
                ))
            elif side == 2:  # left band
                modules.append(Rect(f"conv-l{i}", 0.0, offset, conv_h, conv_w))
            else:  # right band
                modules.append(Rect(
                    f"conv-r{i}", edge - conv_h, offset, conv_h, conv_w
                ))

    # off-wafer IO pad field: the whole C-group footprint is available
    # for area-array pads (pads sit under/over the RDL per Fig. 5).
    io_field = Rect("io-field", 0.0, 0.0, edge, edge)

    layout = CGroupLayout(
        spec=spec,
        chiplets=chiplets,
        conversion_modules=modules,
        io_field=io_field,
        edge_mm=edge,
        perimeter_edges=4 * n,
    )
    return layout
