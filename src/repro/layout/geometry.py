"""Minimal 2D geometry used by the wafer floorplanner."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Tuple

__all__ = ["Rect", "no_overlaps", "fits_in_circle"]


@dataclass(frozen=True)
class Rect:
    """Axis-aligned rectangle (mm)."""

    name: str
    x: float
    y: float
    w: float
    h: float

    @property
    def x2(self) -> float:
        return self.x + self.w

    @property
    def y2(self) -> float:
        return self.y + self.h

    @property
    def area(self) -> float:
        return self.w * self.h

    @property
    def center(self) -> Tuple[float, float]:
        return (self.x + self.w / 2.0, self.y + self.h / 2.0)

    def overlaps(self, other: "Rect", *, eps: float = 1e-9) -> bool:
        return not (
            self.x2 <= other.x + eps
            or other.x2 <= self.x + eps
            or self.y2 <= other.y + eps
            or other.y2 <= self.y + eps
        )

    def corners(self) -> List[Tuple[float, float]]:
        return [
            (self.x, self.y), (self.x2, self.y),
            (self.x, self.y2), (self.x2, self.y2),
        ]


def no_overlaps(rects: Iterable[Rect]) -> bool:
    """Whether no two rectangles overlap (O(n^2); floorplans are small)."""
    rl = list(rects)
    for i, a in enumerate(rl):
        for b in rl[i + 1:]:
            if a.overlaps(b):
                return False
    return True


def fits_in_circle(
    rects: Iterable[Rect], diameter_mm: float, center: Tuple[float, float]
) -> bool:
    """Whether every rectangle corner lies within the wafer circle."""
    r = diameter_mm / 2.0
    cx, cy = center
    for rect in rects:
        for (x, y) in rect.corners():
            if math.hypot(x - cx, y - cy) > r + 1e-9:
                return False
    return True
