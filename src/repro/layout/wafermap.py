"""Wafer-coordinate map of a built switch-less system.

The yield-driven fault model (:mod:`repro.faults`) needs to know *where*
every node, die and link PHY physically sits so that a spatial defect
cluster can be mapped to the hardware it kills.  :class:`WaferMap`
derives those positions from the same floorplan parameters as
:func:`~repro.layout.cgroup_layout.plan_cgroup_layout` (Fig. 9):
C-groups tile each wafer in a centred grid, chips tile each C-group at
the chiplet pitch, and every node sits at the centre of its chiplet
sub-tile — which is also where its PHY shoreline is, so a defect disk
covering a node position severs the channels attached there.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from .cgroup_layout import WAFER_DIAMETER_MM, CGroupLayoutSpec

__all__ = ["NodeSite", "WaferMap"]


@dataclass(frozen=True)
class NodeSite:
    """Physical placement of one node: wafer id and on-wafer mm coords."""

    wafer: int
    x_mm: float
    y_mm: float

    def within(self, x: float, y: float, radius: float) -> bool:
        """Whether this site lies inside a defect disk on its wafer."""
        return math.hypot(self.x_mm - x, self.y_mm - y) <= radius


class WaferMap:
    """Node/chip placement of a switch-less system across its wafers.

    Parameters
    ----------
    system:
        A built :class:`~repro.core.system.SwitchlessSystem` (anything
        exposing ``cfg`` and ``cgroups``; other architectures are not
        wafer-integrated and have no map).
    layout_spec:
        Physical pitch parameters; defaults to the paper's Fig. 9
        C-group floorplan.
    """

    def __init__(
        self, system, layout_spec: CGroupLayoutSpec = CGroupLayoutSpec()
    ) -> None:
        cfg = getattr(system, "cfg", None)
        cgroups = getattr(system, "cgroups", None)
        if cfg is None or cgroups is None or not hasattr(cfg, "mesh_dim"):
            raise TypeError(
                f"{type(system).__name__} is not a wafer-integrated "
                "switch-less system; the yield fault model needs one"
            )
        self.spec = layout_spec
        self.cfg = cfg

        # chip pitch comes from the floorplan; node pitch subdivides it
        chip_pitch = layout_spec.chiplet_mm + layout_spec.spacing_mm
        node_pitch = chip_pitch / cfg.chiplet_dim
        chips_per_side = cfg.mesh_dim // cfg.chiplet_dim
        cg_edge = chips_per_side * chip_pitch + layout_spec.spacing_mm

        cpw = cfg.cgroups_per_wafer
        slots_per_side = max(1, math.ceil(math.sqrt(cpw)))
        tile = cg_edge + layout_spec.spacing_mm
        span = slots_per_side * tile
        base = (WAFER_DIAMETER_MM - span) / 2.0

        #: node id -> :class:`NodeSite`.
        self.sites: Dict[int, NodeSite] = {}
        #: chip id -> (wafer, x_mm, y_mm) of the die centre.
        self.chip_sites: Dict[int, NodeSite] = {}
        self.num_wafers = 0

        ab = cfg.cgroups_per_wgroup
        chip_acc: Dict[int, List[Tuple[int, float, float]]] = {}
        for w, row in enumerate(cgroups):
            for c, cg in enumerate(row):
                gidx = w * ab + c
                wafer = gidx // cpw
                slot = gidx % cpw
                ox = base + (slot % slots_per_side) * tile
                oy = base + (slot // slots_per_side) * tile
                self.num_wafers = max(self.num_wafers, wafer + 1)
                mesh = cg.mesh
                for nid, (y, x) in mesh.coords.items():
                    site = NodeSite(
                        wafer,
                        ox + (x + 0.5) * node_pitch,
                        oy + (y + 0.5) * node_pitch,
                    )
                    self.sites[nid] = site
                    chip = mesh.graph.nodes[nid].chip
                    chip_acc.setdefault(chip, []).append(
                        (wafer, site.x_mm, site.y_mm)
                    )
        for chip, pts in chip_acc.items():
            self.chip_sites[chip] = NodeSite(
                pts[0][0],
                sum(p[1] for p in pts) / len(pts),
                sum(p[2] for p in pts) / len(pts),
            )

    # ------------------------------------------------------------------
    @property
    def wafer_radius_mm(self) -> float:
        return WAFER_DIAMETER_MM / 2.0

    @property
    def wafer_center(self) -> Tuple[float, float]:
        r = self.wafer_radius_mm
        return (r, r)

    def node_site(self, nid: int) -> NodeSite:
        return self.sites[nid]

    def nodes_within(
        self, wafer: int, x: float, y: float, radius: float
    ) -> List[int]:
        """Node ids on ``wafer`` whose site lies in the defect disk."""
        return [
            nid
            for nid, site in self.sites.items()
            if site.wafer == wafer and site.within(x, y, radius)
        ]

    def chips_within(
        self, wafer: int, x: float, y: float, radius: float
    ) -> List[int]:
        """Chip ids on ``wafer`` whose die centre lies in the disk."""
        return [
            chip
            for chip, site in self.chip_sites.items()
            if site.wafer == wafer and site.within(x, y, radius)
        ]
