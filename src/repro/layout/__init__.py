"""Physical layout models: wafer floorplanning and PHY bandwidth (Fig. 9)."""

from .cgroup_layout import (
    WAFER_DIAMETER_MM,
    CGroupLayout,
    CGroupLayoutSpec,
    plan_cgroup_layout,
)
from .geometry import Rect, fits_in_circle, no_overlaps
from .phy import (
    OPTICAL_CONNECTOR,
    SERDES_112G_LR,
    UCIE_X64,
    ConnectorSpec,
    PhySpec,
)
from .wafermap import NodeSite, WaferMap

__all__ = [
    "NodeSite",
    "WaferMap",
    "WAFER_DIAMETER_MM",
    "CGroupLayout",
    "CGroupLayoutSpec",
    "plan_cgroup_layout",
    "Rect",
    "fits_in_circle",
    "no_overlaps",
    "OPTICAL_CONNECTOR",
    "SERDES_112G_LR",
    "UCIE_X64",
    "ConnectorSpec",
    "PhySpec",
]
