"""2D-mesh building blocks and switch-attached baselines.

Two roles:

* the on-wafer 2D-mesh of chiplets used inside every C-group of the
  switch-less Dragonfly (Fig. 3(b)), where nodes are on-chip routers and
  chips are ``chiplet_dim x chiplet_dim`` blocks of nodes;
* the standalone baselines of Fig. 10(a) and Table III row 1 — a
  non-blocking switch with directly attached terminals, and a DOJO-style
  2D-mesh whose edges feed a central switch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .graph import NetworkGraph

__all__ = [
    "MeshSpec",
    "MeshBlock",
    "build_mesh",
    "xy_links",
    "SwitchBlock",
    "build_switch_with_terminals",
    "DojoSpec",
    "build_dojo_mesh_with_switch",
]

#: default per-bit transport energy by link class (Table II).
DEFAULT_ENERGY = {
    "onchip": 0.1,
    "sr": 2.0,
    "local": 20.0,
    "global": 20.0,
    "terminal": 20.0,
}


@dataclass(frozen=True)
class MeshSpec:
    """Geometry and link parameters of one square 2D mesh.

    ``dim`` is the number of on-chip routers (nodes) per side;
    ``chiplet_dim`` the number of nodes per chiplet side (must divide
    ``dim``).  Links between nodes of the same chiplet are ``onchip``
    class; links crossing a chiplet boundary are on-wafer short-reach
    (``sr``).  ``capacity`` is the paper's intra-C-group bandwidth knob
    (1 = base, 2 = "2B", 4 = "4B").
    """

    dim: int
    chiplet_dim: int = 1
    sr_latency: int = 1
    onchip_latency: int = 1
    capacity: int = 1

    def __post_init__(self) -> None:
        if self.dim < 1:
            raise ValueError("mesh dim must be >= 1")
        if self.chiplet_dim < 1 or self.dim % self.chiplet_dim != 0:
            raise ValueError(
                f"chiplet_dim {self.chiplet_dim} must divide dim {self.dim}"
            )
        if self.capacity < 1:
            raise ValueError("capacity must be >= 1")

    @property
    def num_nodes(self) -> int:
        return self.dim * self.dim

    @property
    def chips_per_side(self) -> int:
        return self.dim // self.chiplet_dim

    @property
    def num_chips(self) -> int:
        return self.chips_per_side ** 2


@dataclass
class MeshBlock:
    """A mesh instantiated inside a :class:`NetworkGraph`.

    Provides coordinate lookups used by routing (XY paths need grid
    coordinates) and by the C-group port machinery (perimeter walk).
    """

    spec: MeshSpec
    graph: NetworkGraph
    #: node id at grid position [y][x].
    grid: List[List[int]]
    #: (y, x) of each node id local to this block.
    coords: Dict[int, Tuple[int, int]]
    #: chip ids used by this block, row-major over chiplet blocks.
    chips: List[int]

    @property
    def num_nodes(self) -> int:
        return self.spec.num_nodes

    def node_at(self, y: int, x: int) -> int:
        return self.grid[y][x]

    def snake_chip_nodes(self) -> List[int]:
        """Node ids chip-by-chip in boustrophedon (snake) chip order.

        Consecutive chips in this order are mesh-adjacent, which is the
        chip ring the paper's collective analysis assumes (Fig. 4(b)):
        ring neighbours exchange over direct on-wafer links instead of
        diagonals.  Nodes within a chip stay row-major.
        """
        cps = self.spec.chips_per_side
        cd = self.spec.chiplet_dim
        out: List[int] = []
        for r in range(cps):
            cols = range(cps) if r % 2 == 0 else range(cps - 1, -1, -1)
            for c in cols:
                for y in range(r * cd, (r + 1) * cd):
                    for x in range(c * cd, (c + 1) * cd):
                        out.append(self.grid[y][x])
        return out

    def perimeter_nodes(self) -> List[int]:
        """Perimeter node ids in clockwise order from the top-left corner.

        For ``dim == 1`` this is the single node.  The order matters: the
        C-group port machinery assigns external ports along this walk.
        """
        d = self.spec.dim
        if d == 1:
            return [self.grid[0][0]]
        out: List[int] = []
        for x in range(d):  # top edge, left->right
            out.append(self.grid[0][x])
        for y in range(1, d):  # right edge, top->bottom
            out.append(self.grid[y][d - 1])
        for x in range(d - 2, -1, -1):  # bottom edge, right->left
            out.append(self.grid[d - 1][x])
        for y in range(d - 2, 0, -1):  # left edge, bottom->top
            out.append(self.grid[y][0])
        return out


def build_mesh(
    spec: MeshSpec,
    graph: Optional[NetworkGraph] = None,
    *,
    chip_base: int = 0,
    coord_prefix: Tuple[int, ...] = (),
    node_kind: str = "core",
) -> MeshBlock:
    """Instantiate a mesh into ``graph`` (a fresh one if None).

    Chips are ``chiplet_dim``-square blocks of nodes numbered row-major
    starting at ``chip_base``.  Node coords are ``coord_prefix + (y, x)``.
    """
    if graph is None:
        graph = NetworkGraph(f"mesh{spec.dim}x{spec.dim}")
    d = spec.dim
    cd = spec.chiplet_dim
    grid: List[List[int]] = []
    coords: Dict[int, Tuple[int, int]] = {}
    chips_seen: List[int] = []
    for y in range(d):
        row = []
        for x in range(d):
            chip = chip_base + (y // cd) * spec.chips_per_side + (x // cd)
            nid = graph.add_node(
                node_kind, chip, is_terminal=True,
                coords=coord_prefix + (y, x),
            )
            row.append(nid)
            coords[nid] = (y, x)
            if chip not in chips_seen:
                chips_seen.append(chip)
        grid.append(row)
    # grid channels
    for y in range(d):
        for x in range(d):
            if x + 1 < d:
                same_chip = (x // cd) == ((x + 1) // cd)
                graph.add_channel(
                    grid[y][x], grid[y][x + 1],
                    latency=spec.onchip_latency if same_chip else spec.sr_latency,
                    capacity=spec.capacity,
                    energy_pj=DEFAULT_ENERGY["onchip" if same_chip else "sr"],
                    klass="onchip" if same_chip else "sr",
                )
            if y + 1 < d:
                same_chip = (y // cd) == ((y + 1) // cd)
                graph.add_channel(
                    grid[y][x], grid[y + 1][x],
                    latency=spec.onchip_latency if same_chip else spec.sr_latency,
                    capacity=spec.capacity,
                    energy_pj=DEFAULT_ENERGY["onchip" if same_chip else "sr"],
                    klass="onchip" if same_chip else "sr",
                )
    return MeshBlock(spec, graph, grid, coords, chips_seen)


def xy_links(block: "MeshBlock", src: int, dst: int) -> List[int]:
    """Link ids of the XY (X first, then Y) dimension-order path.

    XY routing is deadlock free on a mesh with a single VC; it is the
    intra-C-group routing of the paper's baseline VC scheme (Sec. IV-A).
    """
    graph = block.graph
    sy, sx = block.coords[src]
    dy, dx = block.coords[dst]
    links: List[int] = []
    y, x = sy, sx
    step = 1 if dx > x else -1
    while x != dx:
        nxt = block.grid[y][x + step]
        links.append(graph.link_between(block.grid[y][x], nxt))
        x += step
    step = 1 if dy > y else -1
    while y != dy:
        nxt = block.grid[y + step][x]
        links.append(graph.link_between(block.grid[y][x], nxt))
        y += step
    return links


# ----------------------------------------------------------------------
# switch-with-terminals baseline
# ----------------------------------------------------------------------
@dataclass
class SwitchBlock:
    """A single crossbar switch with directly attached terminals."""

    graph: NetworkGraph
    switch: int
    terminals: List[int]


def build_switch_with_terminals(
    num_terminals: int,
    *,
    graph: Optional[NetworkGraph] = None,
    terminal_latency: int = 1,
    terminal_klass: str = "terminal",
    capacity: int = 1,
    chip_base: int = 0,
) -> SwitchBlock:
    """The Fig. 10(a) "Switch" baseline: one chip per switch port.

    The switch node itself is not a terminal; its radix for simulation
    purposes is ``num_terminals`` (every port non-blocking, arbitration
    still applies per output link, which is what makes the single
    injection/ejection channel per chip the bottleneck — the paper's
    point).
    """
    if graph is None:
        graph = NetworkGraph(f"switch{num_terminals}")
    switch = graph.add_node("switch", chip=-1, is_terminal=False)
    terms: List[int] = []
    for i in range(num_terminals):
        t = graph.add_node("terminal", chip=chip_base + i, is_terminal=True)
        graph.add_channel(
            t, switch,
            latency=terminal_latency,
            capacity=capacity,
            energy_pj=DEFAULT_ENERGY[terminal_klass],
            klass=terminal_klass,
        )
        terms.append(t)
    return SwitchBlock(graph, switch, terms)


# ----------------------------------------------------------------------
# DOJO-style 2D mesh + central edge switch (Table III row 1)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DojoSpec:
    """A 2D mesh of chips whose perimeter links feed one central switch.

    Models the DOJO supercomputer's scale-out described in Sec. II-A2:
    a large 2D-mesh of wafers with a centralized switch connecting all
    edges to cut the diameter.
    """

    dim: int
    sr_latency: int = 1
    switch_latency: int = 8
    capacity: int = 1


@dataclass
class DojoBlock:
    graph: NetworkGraph
    mesh: MeshBlock
    switch: int


def build_dojo_mesh_with_switch(spec: DojoSpec) -> DojoBlock:
    graph = NetworkGraph(f"dojo{spec.dim}x{spec.dim}")
    mesh = build_mesh(
        MeshSpec(
            dim=spec.dim,
            chiplet_dim=1,
            sr_latency=spec.sr_latency,
            capacity=spec.capacity,
        ),
        graph,
    )
    switch = graph.add_node("switch", chip=-1, is_terminal=False)
    for nid in mesh.perimeter_nodes():
        graph.add_channel(
            nid, switch,
            latency=spec.switch_latency,
            capacity=spec.capacity,
            energy_pj=DEFAULT_ENERGY["local"],
            klass="local",
        )
    return DojoBlock(graph, mesh, switch)
