"""Directed-multigraph network substrate shared by every topology.

All topologies in this package (switch-based Dragonfly, 2D mesh, Fat-Tree,
HammingMesh, PolarFly and the switch-less Dragonfly-on-wafers) are lowered to
the same representation: a :class:`NetworkGraph` of :class:`Node` routers
connected by *directed* :class:`Link` channels.  A full-duplex physical
channel is represented as two directed links (see :meth:`NetworkGraph
.add_channel`).

Every link carries the attributes the paper's evaluation depends on:

``latency``
    cycles a flit spends in flight on the link (Table IV: 1 for short-reach,
    8 for long-reach by default).
``capacity``
    flits accepted per cycle; the paper's "2B"/"4B" configurations double or
    quadruple the intra-C-group capacity (Sec. V-B).
``energy_pj``
    transport energy per bit used by the Fig. 15 accounting (Table II).
``klass``
    one of :data:`LINK_CLASSES`, used for energy breakdown and for the
    diameter/latency model of Eq. (7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import networkx as nx

__all__ = [
    "LINK_CLASSES",
    "Node",
    "Link",
    "NetworkGraph",
]

#: Recognised link classes.
#:
#: ``onchip``    hop inside a chiplet's NoC              (H_on-chip, ~0.1 pJ/b)
#: ``sr``        on-wafer short-reach hop incl. SR-LR    (H_sr,      ~2 pJ/b)
#: ``local``     long-reach intra-group channel          (H_l,       ~20 pJ/b)
#: ``global``    long-reach inter-group channel          (H_g,       ~20 pJ/b)
#: ``terminal``  processor-to-switch channel             (H*_l,      ~20 pJ/b)
LINK_CLASSES = ("onchip", "sr", "local", "global", "terminal")


@dataclass(frozen=True)
class Node:
    """A router (switch, on-chip router, or terminal adapter).

    Parameters
    ----------
    id:
        Dense integer id, index into :attr:`NetworkGraph.nodes`.
    kind:
        Free-form role tag, e.g. ``"switch"``, ``"core"``, ``"terminal"``.
    chip:
        Chip id this node belongs to.  Injection rates in the paper are
        normalised per *chip* (flits/cycle/chip); several on-chip nodes may
        share a chip in the switch-less architecture.
    is_terminal:
        Whether traffic may be injected at / ejected to this node.
    coords:
        Optional structured coordinates (e.g. ``(wgroup, cgroup, y, x)``).
    """

    id: int
    kind: str
    chip: int
    is_terminal: bool
    coords: Tuple[int, ...] = ()


@dataclass(frozen=True)
class Link:
    """A directed channel between two routers."""

    id: int
    src: int
    dst: int
    latency: int
    capacity: int
    energy_pj: float
    klass: str

    def __post_init__(self) -> None:
        if self.klass not in LINK_CLASSES:
            raise ValueError(f"unknown link class {self.klass!r}")
        if self.latency < 1:
            raise ValueError("link latency must be >= 1 cycle")
        if self.capacity < 1:
            raise ValueError("link capacity must be >= 1 flit/cycle")


class NetworkGraph:
    """Mutable builder + immutable-ish container for a router network.

    The graph is a directed multigraph: parallel links between the same
    (src, dst) pair are allowed and kept in insertion order (used e.g. when a
    C-group exposes several ports toward the same peer C-group).
    """

    def __init__(self, name: str = "network") -> None:
        self.name = name
        self.nodes: List[Node] = []
        self.links: List[Link] = []
        # src -> dst -> [link ids] (insertion order preserved)
        self._adj: Dict[int, Dict[int, List[int]]] = {}
        # chip id -> [node ids]
        self._chips: Dict[int, List[int]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(
        self,
        kind: str,
        chip: int,
        *,
        is_terminal: bool = True,
        coords: Tuple[int, ...] = (),
    ) -> int:
        """Add a router and return its dense id."""
        nid = len(self.nodes)
        node = Node(nid, kind, chip, is_terminal, coords)
        self.nodes.append(node)
        self._adj[nid] = {}
        if is_terminal:
            self._chips.setdefault(chip, []).append(nid)
        return nid

    def add_link(
        self,
        src: int,
        dst: int,
        *,
        latency: int,
        capacity: int = 1,
        energy_pj: float = 0.0,
        klass: str = "sr",
    ) -> int:
        """Add one directed link and return its id."""
        if src == dst:
            raise ValueError("self-links are not allowed")
        for nid in (src, dst):
            if not 0 <= nid < len(self.nodes):
                raise KeyError(f"node {nid} does not exist")
        lid = len(self.links)
        self.links.append(
            Link(lid, src, dst, latency, capacity, energy_pj, klass)
        )
        self._adj[src].setdefault(dst, []).append(lid)
        return lid

    def add_channel(
        self,
        a: int,
        b: int,
        *,
        latency: int,
        capacity: int = 1,
        energy_pj: float = 0.0,
        klass: str = "sr",
    ) -> Tuple[int, int]:
        """Add a full-duplex channel (two directed links a->b and b->a)."""
        fwd = self.add_link(
            a, b, latency=latency, capacity=capacity,
            energy_pj=energy_pj, klass=klass,
        )
        rev = self.add_link(
            b, a, latency=latency, capacity=capacity,
            energy_pj=energy_pj, klass=klass,
        )
        return fwd, rev

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_links(self) -> int:
        return len(self.links)

    @property
    def num_chips(self) -> int:
        return len(self._chips)

    def chips(self) -> Dict[int, List[int]]:
        """chip id -> terminal node ids (do not mutate)."""
        return self._chips

    def terminals(self) -> List[int]:
        """All node ids that can inject/eject traffic."""
        return [n.id for n in self.nodes if n.is_terminal]

    def links_between(self, src: int, dst: int) -> List[int]:
        """Link ids of all directed links src -> dst ([] if none)."""
        return list(self._adj.get(src, {}).get(dst, []))

    def link_between(self, src: int, dst: int, index: int = 0) -> int:
        """The ``index``-th directed link src -> dst; KeyError if missing."""
        lids = self._adj.get(src, {}).get(dst, [])
        if index >= len(lids):
            raise KeyError(f"no link #{index} from {src} to {dst}")
        return lids[index]

    def has_link(self, src: int, dst: int) -> bool:
        return bool(self._adj.get(src, {}).get(dst))

    def neighbors_out(self, src: int) -> List[int]:
        return list(self._adj.get(src, {}).keys())

    def out_links(self, src: int) -> Iterator[Link]:
        for lids in self._adj.get(src, {}).values():
            for lid in lids:
                yield self.links[lid]

    def in_links(self, dst: int) -> List[Link]:
        """All links ending at ``dst`` (O(E); cached by the simulator)."""
        return [l for l in self.links if l.dst == dst]

    def degree_out(self, src: int) -> int:
        return sum(len(v) for v in self._adj.get(src, {}).values())

    # ------------------------------------------------------------------
    # validation and export
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raises ValueError on violation."""
        for link in self.links:
            rev = self._adj.get(link.dst, {}).get(link.src, [])
            if not rev:
                raise ValueError(
                    f"link {link.id} ({link.src}->{link.dst}) has no "
                    "reverse: all channels must be full-duplex"
                )
        if not any(n.is_terminal for n in self.nodes):
            raise ValueError("network has no terminals")

    def to_networkx(self, *, multigraph: bool = False) -> nx.Graph:
        """Export the undirected channel graph for analysis.

        Each full-duplex channel becomes one undirected edge with the
        forward link's attributes.  With ``multigraph=True`` parallel
        channels are preserved (needed for exact bisection counts).
        """
        g: nx.Graph = nx.MultiGraph() if multigraph else nx.Graph()
        for node in self.nodes:
            g.add_node(node.id, kind=node.kind, chip=node.chip)
        seen = set()
        for link in self.links:
            key = (min(link.src, link.dst), max(link.src, link.dst))
            if not multigraph and key in seen:
                continue
            if multigraph:
                # add one undirected edge per directed pair; skip reverse dir
                if link.src > link.dst:
                    continue
            seen.add(key)
            g.add_edge(
                link.src,
                link.dst,
                latency=link.latency,
                capacity=link.capacity,
                klass=link.klass,
            )
        return g

    def link_class_counts(self) -> Dict[str, int]:
        """Directed link count per class (for cost accounting)."""
        counts: Dict[str, int] = {}
        for link in self.links:
            counts[link.klass] = counts.get(link.klass, 0) + 1
        return counts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NetworkGraph({self.name!r}, nodes={self.num_nodes}, "
            f"links={self.num_links}, chips={self.num_chips})"
        )
