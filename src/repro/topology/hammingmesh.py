"""HammingMesh (HxMesh): local 2D-mesh boards + global Fat-Trees [8].

A ``Hx<b>Mesh`` places chips on ``b x b`` 2D-mesh boards; board grids are
arranged in a ``rows x cols`` array, and every *chip row* (resp. column)
of the full array is connected by its own Fat-Tree through the chips on
board edges.  It provides cheap high local bandwidth (the board mesh)
with Fat-Tree global connectivity — the closest published relative of
the paper's motivation, hence its appearance in Table III.

This builder produces simulation-grade small instances (row/column trees
are modeled as single non-blocking switches per row/column, which is
exact for the scales tests use — a 64-port switch covers them).  The
Table III cost arithmetic lives in :mod:`repro.analysis.case_study`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .graph import NetworkGraph
from .mesh import DEFAULT_ENERGY

__all__ = ["HammingMeshConfig", "HammingMeshSystem", "build_hammingmesh"]


@dataclass(frozen=True)
class HammingMeshConfig:
    """Parameters of an HxMesh instance."""

    #: chips per board side (4 for Hx4Mesh).
    board_dim: int
    #: boards per array side.
    array_rows: int
    array_cols: int
    onboard_latency: int = 1
    tree_latency: int = 8
    capacity: int = 1

    @property
    def chip_rows(self) -> int:
        return self.board_dim * self.array_rows

    @property
    def chip_cols(self) -> int:
        return self.board_dim * self.array_cols

    @property
    def num_chips(self) -> int:
        return self.chip_rows * self.chip_cols


@dataclass
class HammingMeshSystem:
    cfg: HammingMeshConfig
    graph: NetworkGraph
    #: chip node id at [row][col] of the full array.
    grid: List[List[int]]
    row_switches: List[int]
    col_switches: List[int]


def build_hammingmesh(cfg: HammingMeshConfig) -> HammingMeshSystem:
    """Construct the HxMesh router graph.

    Chips on the west/east edges of each board connect to their chip
    row's tree switch; chips on north/south edges to their column's tree
    switch (matching HammingMesh's edge-attached trees).
    """
    b = cfg.board_dim
    graph = NetworkGraph(
        f"hx{b}mesh-{cfg.array_rows}x{cfg.array_cols}"
    )
    grid: List[List[int]] = []
    chip = 0
    for r in range(cfg.chip_rows):
        row = []
        for c in range(cfg.chip_cols):
            nid = graph.add_node(
                "chip", chip, is_terminal=True, coords=(r, c)
            )
            chip += 1
            row.append(nid)
        grid.append(row)

    # on-board 2D mesh links
    for r in range(cfg.chip_rows):
        for c in range(cfg.chip_cols):
            if c + 1 < cfg.chip_cols and (c + 1) % b != 0:
                graph.add_channel(
                    grid[r][c], grid[r][c + 1],
                    latency=cfg.onboard_latency, capacity=cfg.capacity,
                    energy_pj=DEFAULT_ENERGY["sr"], klass="sr",
                )
            if r + 1 < cfg.chip_rows and (r + 1) % b != 0:
                graph.add_channel(
                    grid[r][c], grid[r + 1][c],
                    latency=cfg.onboard_latency, capacity=cfg.capacity,
                    energy_pj=DEFAULT_ENERGY["sr"], klass="sr",
                )

    # row trees: west/east board-edge chips of each chip row
    row_switches: List[int] = []
    for r in range(cfg.chip_rows):
        sw = graph.add_node("switch", chip=-1, is_terminal=False)
        row_switches.append(sw)
        for c in range(cfg.chip_cols):
            if c % b == 0 or (c + 1) % b == 0:
                graph.add_channel(
                    grid[r][c], sw,
                    latency=cfg.tree_latency, capacity=cfg.capacity,
                    energy_pj=DEFAULT_ENERGY["global"], klass="global",
                )
    # column trees: north/south board-edge chips of each chip column
    col_switches: List[int] = []
    for c in range(cfg.chip_cols):
        sw = graph.add_node("switch", chip=-1, is_terminal=False)
        col_switches.append(sw)
        for r in range(cfg.chip_rows):
            if r % b == 0 or (r + 1) % b == 0:
                graph.add_channel(
                    grid[r][c], sw,
                    latency=cfg.tree_latency, capacity=cfg.capacity,
                    energy_pj=DEFAULT_ENERGY["global"], klass="global",
                )
    graph.validate()
    return HammingMeshSystem(cfg, graph, grid, row_switches, col_switches)
