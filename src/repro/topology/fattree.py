"""Three-stage folded-Clos (Fat-Tree) builder (Table III comparator).

Builds the k-ary three-stage fat-tree: ``(k/2)^2`` core switches, ``k``
pods of ``k/2`` aggregation + ``k/2`` edge switches, ``(k/2)^2``
terminals per pod.  Simulation-grade for small ``k``; the Table III cost
rows use the closed-form arithmetic in :mod:`repro.analysis.cost`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .graph import NetworkGraph
from .mesh import DEFAULT_ENERGY

__all__ = ["FatTreeSystem", "build_fattree"]


@dataclass
class FatTreeSystem:
    radix: int
    graph: NetworkGraph
    core: List[int]
    aggregation: List[List[int]]  # per pod
    edge: List[List[int]]  # per pod
    terminals: List[int]

    @property
    def num_switches(self) -> int:
        return (
            len(self.core)
            + sum(len(p) for p in self.aggregation)
            + sum(len(p) for p in self.edge)
        )


def build_fattree(
    radix: int,
    *,
    link_latency: int = 8,
    capacity: int = 1,
) -> FatTreeSystem:
    """Construct the full k-ary fat-tree for even ``radix`` >= 2."""
    if radix < 2 or radix % 2:
        raise ValueError("fat-tree radix must be even and >= 2")
    k = radix
    half = k // 2
    graph = NetworkGraph(f"fattree-k{k}")

    core = [
        graph.add_node("core-switch", chip=-1, is_terminal=False)
        for _ in range(half * half)
    ]
    aggregation: List[List[int]] = []
    edge: List[List[int]] = []
    terminals: List[int] = []
    chip = 0
    for pod in range(k):
        aggs = [
            graph.add_node("agg-switch", chip=-1, is_terminal=False)
            for _ in range(half)
        ]
        edges = [
            graph.add_node("edge-switch", chip=-1, is_terminal=False)
            for _ in range(half)
        ]
        aggregation.append(aggs)
        edge.append(edges)
        # edge <-> aggregation full mesh within the pod
        for e in edges:
            for a in aggs:
                graph.add_channel(
                    e, a, latency=link_latency, capacity=capacity,
                    energy_pj=DEFAULT_ENERGY["local"], klass="local",
                )
        # aggregation i connects to core group i
        for i, a in enumerate(aggs):
            for j in range(half):
                graph.add_channel(
                    a, core[i * half + j],
                    latency=link_latency, capacity=capacity,
                    energy_pj=DEFAULT_ENERGY["global"], klass="global",
                )
        # terminals
        for e in edges:
            for _ in range(half):
                t = graph.add_node("terminal", chip, is_terminal=True)
                chip += 1
                graph.add_channel(
                    t, e, latency=link_latency, capacity=capacity,
                    energy_pj=DEFAULT_ENERGY["terminal"], klass="terminal",
                )
                terminals.append(t)
    graph.validate()
    return FatTreeSystem(k, graph, core, aggregation, edge, terminals)
