"""Graph-level topology properties: diameter, path length, bisection.

Used to cross-check the analytical models (Eqs. 2-7) against the actual
built router graphs via networkx.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import networkx as nx

from .graph import NetworkGraph

__all__ = [
    "hop_diameter",
    "average_shortest_path",
    "terminal_diameter",
    "bisection_channels",
    "degree_histogram",
    "surviving_networkx",
    "component_summary",
    "pair_path_diversity",
]


def hop_diameter(graph: NetworkGraph) -> int:
    """Diameter in router hops of the undirected channel graph."""
    return nx.diameter(graph.to_networkx())


def average_shortest_path(graph: NetworkGraph) -> float:
    return nx.average_shortest_path_length(graph.to_networkx())


def terminal_diameter(graph: NetworkGraph) -> int:
    """Max shortest-path hops between any two terminals."""
    g = graph.to_networkx()
    terms = graph.terminals()
    best = 0
    for src in terms:
        lengths = nx.single_source_shortest_path_length(g, src)
        best = max(best, max(lengths[t] for t in terms))
    return best


def bisection_channels(
    graph: NetworkGraph, partition_a: list, partition_b: list
) -> int:
    """Directed channels crossing a given node bipartition."""
    in_a = set(partition_a)
    in_b = set(partition_b)
    count = 0
    for link in graph.links:
        if link.src in in_a and link.dst in in_b:
            count += link.capacity
        elif link.src in in_b and link.dst in in_a:
            count += link.capacity
    return count


def degree_histogram(graph: NetworkGraph) -> Dict[int, int]:
    """Out-degree histogram of the router graph."""
    hist: Dict[int, int] = {}
    for node in graph.nodes:
        d = graph.degree_out(node.id)
        hist[d] = hist.get(d, 0) + 1
    return hist


# ----------------------------------------------------------------------
# degraded-graph views (used by repro.faults)
# ----------------------------------------------------------------------
def surviving_networkx(
    graph: NetworkGraph,
    *,
    failed_links: Iterable[int] = (),
    failed_nodes: Iterable[int] = (),
) -> nx.Graph:
    """Undirected channel graph with the given failures removed.

    A channel survives only if *some* directed link between its endpoint
    pair survives in each direction; the full-duplex failure closure of
    :mod:`repro.faults.inject` keeps both directions in sync, so the
    forward direction alone decides.
    """
    dead_links = set(failed_links)
    dead_nodes = set(failed_nodes)
    g = nx.Graph()
    for node in graph.nodes:
        if node.id not in dead_nodes:
            g.add_node(node.id, kind=node.kind, chip=node.chip)
    for link in graph.links:
        if link.id in dead_links or link.src > link.dst:
            continue
        if link.src in dead_nodes or link.dst in dead_nodes:
            continue
        g.add_edge(link.src, link.dst, klass=link.klass)
    return g


def component_summary(
    g: nx.Graph, terminals: Sequence[int]
) -> Dict[str, object]:
    """Connectivity summary of a (possibly degraded) undirected graph."""
    terms = [t for t in terminals if t in g]
    comps = [set(c) for c in nx.connected_components(g)] if len(g) else []
    comps.sort(key=len, reverse=True)
    term_comps = [c for c in comps if any(t in c for t in terms)]
    largest_terms = (
        max((sum(1 for t in terms if t in c) for c in term_comps), default=0)
    )
    isolated = sum(
        1 for t in terms if t in g and g.degree(t) == 0
    )
    return {
        "num_components": len(comps),
        "num_terminal_components": len(term_comps),
        "connected": len(term_comps) <= 1,
        "largest_component_terminals": largest_terms,
        "terminal_reach_fraction": (
            largest_terms / len(terms) if terms else 0.0
        ),
        "isolated_terminals": isolated,
    }


def pair_path_diversity(
    g: nx.Graph,
    pairs: Sequence[Tuple[int, int]],
    *,
    max_pairs: int = 16,
    seed: int = 0,
) -> float:
    """Mean edge connectivity (link-disjoint path count) over sampled pairs.

    Unreachable or missing-node pairs count as zero diversity, so the
    metric degrades smoothly as failures partition the network.
    """
    pairs = list(pairs)
    if not pairs:
        return 0.0
    if len(pairs) > max_pairs:
        pairs = random.Random(seed).sample(pairs, max_pairs)
    total = 0.0
    for a, b in pairs:
        if a in g and b in g and nx.has_path(g, a, b):
            total += nx.edge_connectivity(g, a, b)
    return total / len(pairs)
