"""Graph-level topology properties: diameter, path length, bisection.

Used to cross-check the analytical models (Eqs. 2-7) against the actual
built router graphs via networkx.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import networkx as nx

from .graph import NetworkGraph

__all__ = [
    "hop_diameter",
    "average_shortest_path",
    "terminal_diameter",
    "bisection_channels",
    "degree_histogram",
]


def hop_diameter(graph: NetworkGraph) -> int:
    """Diameter in router hops of the undirected channel graph."""
    return nx.diameter(graph.to_networkx())


def average_shortest_path(graph: NetworkGraph) -> float:
    return nx.average_shortest_path_length(graph.to_networkx())


def terminal_diameter(graph: NetworkGraph) -> int:
    """Max shortest-path hops between any two terminals."""
    g = graph.to_networkx()
    terms = graph.terminals()
    best = 0
    for src in terms:
        lengths = nx.single_source_shortest_path_length(g, src)
        best = max(best, max(lengths[t] for t in terms))
    return best


def bisection_channels(
    graph: NetworkGraph, partition_a: list, partition_b: list
) -> int:
    """Directed channels crossing a given node bipartition."""
    in_a = set(partition_a)
    in_b = set(partition_b)
    count = 0
    for link in graph.links:
        if link.src in in_a and link.dst in in_b:
            count += link.capacity
        elif link.src in in_b and link.dst in in_a:
            count += link.capacity
    return count


def degree_histogram(graph: NetworkGraph) -> Dict[int, int]:
    """Out-degree histogram of the router graph."""
    hist: Dict[int, int] = {}
    for node in graph.nodes:
        d = graph.degree_out(node.id)
        hist[d] = hist.get(d, 0) + 1
    return hist
