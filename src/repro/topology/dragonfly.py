"""Switch-based Dragonfly (Kim et al., ISCA'08) — the paper's baseline.

A Dragonfly has ``g`` groups of ``a`` switches; switches within a group are
fully connected (local channels); each switch has ``p`` terminals and ``h``
global channels; groups are fully connected through the global channels
(``g <= a*h + 1``).

The paper's experiment configurations (Sec. V-A4):

* radix-16: terminal/local/global ports = 4:7:5  → ``p=4, a=8, h=5``,
  41 groups, 1312 chips;
* radix-32: 8:15:9 → ``p=8, a=16, h=9``, 145 groups, 18560 chips.

Global channels use the *absolute* arrangement: group ``G``'s channel
``c`` (``0 <= c < a*h``) connects to group ``c`` if ``c < G`` else
``c + 1``, attached to switch ``c // h`` port ``c % h``.  This is the
same arrangement the switch-less builder uses at C-group granularity, so
the two architectures are directly comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .graph import NetworkGraph
from .mesh import DEFAULT_ENERGY

__all__ = ["DragonflyConfig", "DragonflySystem", "build_dragonfly"]


@dataclass(frozen=True)
class DragonflyConfig:
    """Parameters of a switch-based Dragonfly."""

    #: terminals (processors/chips) per switch.
    p: int
    #: switches per group.
    a: int
    #: global channels per switch.
    h: int
    #: number of groups; defaults to the maximum a*h + 1.
    g: Optional[int] = None
    terminal_latency: int = 8
    local_latency: int = 8
    global_latency: int = 8
    capacity: int = 1

    def __post_init__(self) -> None:
        if min(self.p, self.a, self.h) < 1:
            raise ValueError("p, a, h must all be >= 1")
        if self.num_groups < 2:
            raise ValueError("a Dragonfly needs at least 2 groups")
        if self.num_groups > self.a * self.h + 1:
            raise ValueError(
                f"g={self.num_groups} exceeds the a*h+1={self.a * self.h + 1} "
                "groups reachable with one global channel per pair"
            )

    @property
    def num_groups(self) -> int:
        return self.g if self.g is not None else self.a * self.h + 1

    @property
    def radix(self) -> int:
        """Switch radix: p terminals + (a-1) locals + h globals."""
        return self.p + (self.a - 1) + self.h

    @property
    def num_switches(self) -> int:
        return self.num_groups * self.a

    @property
    def num_chips(self) -> int:
        return self.num_switches * self.p

    # -- paper configurations ------------------------------------------
    @classmethod
    def radix16(cls, **kw) -> "DragonflyConfig":
        """4:7:5 split of a radix-16 switch (41 groups, 1312 chips)."""
        return cls(p=4, a=8, h=5, **kw)

    @classmethod
    def radix32(cls, **kw) -> "DragonflyConfig":
        """8:15:9 split of a radix-32 switch (145 groups, 18560 chips)."""
        return cls(p=8, a=16, h=9, **kw)

    @classmethod
    def radix8(cls, **kw) -> "DragonflyConfig":
        """2:3:2 split of a radix-8 switch (9 groups, 72 chips).

        Not in the paper; used as a CI-friendly scale-down with the same
        balanced local:global structure.
        """
        return cls(p=2, a=4, h=2, **kw)

    @classmethod
    def small_equiv(cls, **kw) -> "DragonflyConfig":
        """4:3:2 split (9 groups, 144 chips): the switch-based
        counterpart of :meth:`repro.core.SwitchlessConfig.small_equiv`,
        matching its chips per switch/C-group (4) and global channels
        per group so scaled-down global experiments stay comparable.
        """
        return cls(p=4, a=4, h=2, **kw)


class DragonflySystem:
    """Built switch-based Dragonfly plus the lookup tables routing needs."""

    def __init__(self, cfg: DragonflyConfig) -> None:
        self.cfg = cfg
        self.graph = NetworkGraph(
            f"dragonfly-p{cfg.p}a{cfg.a}h{cfg.h}g{cfg.num_groups}"
        )
        g, a, p, h = cfg.num_groups, cfg.a, cfg.p, cfg.h

        #: switch node id at [group][switch index].
        self.switches: List[List[int]] = []
        #: terminal node id at [group][switch index][terminal index].
        self.terminals: List[List[List[int]]] = []
        #: node id -> (group, switch index); terminals map to their switch.
        self._node_group: Dict[int, Tuple[int, int]] = {}

        chip = 0
        for gi in range(g):
            row: List[int] = []
            trow: List[List[int]] = []
            for si in range(a):
                sw = self.graph.add_node(
                    "switch", chip=-1, is_terminal=False, coords=(gi, si)
                )
                row.append(sw)
                self._node_group[sw] = (gi, si)
                terms: List[int] = []
                for ti in range(p):
                    t = self.graph.add_node(
                        "terminal", chip=chip, is_terminal=True,
                        coords=(gi, si, ti),
                    )
                    chip += 1
                    self.graph.add_channel(
                        t, sw,
                        latency=cfg.terminal_latency,
                        capacity=cfg.capacity,
                        energy_pj=DEFAULT_ENERGY["terminal"],
                        klass="terminal",
                    )
                    terms.append(t)
                    self._node_group[t] = (gi, si)
                trow.append(terms)
            self.switches.append(row)
            self.terminals.append(trow)

        # local all-to-all within each group
        for gi in range(g):
            for i in range(a):
                for j in range(i + 1, a):
                    self.graph.add_channel(
                        self.switches[gi][i], self.switches[gi][j],
                        latency=cfg.local_latency,
                        capacity=cfg.capacity,
                        energy_pj=DEFAULT_ENERGY["local"],
                        klass="local",
                    )

        # global channels, absolute arrangement
        for gi in range(g):
            for c in range(a * h):
                peer = c if c < gi else c + 1
                if peer >= g or peer < gi:
                    continue  # out of range, or already added from peer side
                si = c // h
                c_back = gi if gi < peer else gi - 1
                sj = c_back // h
                self.graph.add_channel(
                    self.switches[gi][si], self.switches[peer][sj],
                    latency=cfg.global_latency,
                    capacity=cfg.capacity,
                    energy_pj=DEFAULT_ENERGY["global"],
                    klass="global",
                )
        self.graph.validate()

    # ------------------------------------------------------------------
    # lookups used by routing and traffic patterns
    # ------------------------------------------------------------------
    @property
    def num_groups(self) -> int:
        return self.cfg.num_groups

    def group_of(self, node: int) -> int:
        return self._node_group[node][0]

    def switch_index_of(self, node: int) -> int:
        return self._node_group[node][1]

    def group_nodes(self, gi: int) -> List[int]:
        """All terminal node ids of group ``gi``."""
        return [t for terms in self.terminals[gi] for t in terms]

    def switch_of_terminal(self, term: int) -> int:
        gi, si = self._node_group[term]
        return self.switches[gi][si]

    def gateway_switch(self, src_group: int, dst_group: int) -> int:
        """Switch index in ``src_group`` owning the channel to ``dst_group``."""
        if src_group == dst_group:
            raise ValueError("no gateway within the same group")
        c = dst_group if dst_group < src_group else dst_group - 1
        return c // self.cfg.h

    def global_link(self, src_group: int, dst_group: int) -> int:
        """Directed link id of the global channel src_group -> dst_group."""
        si = self.gateway_switch(src_group, dst_group)
        sj = self.gateway_switch(dst_group, src_group)
        return self.graph.link_between(
            self.switches[src_group][si], self.switches[dst_group][sj]
        )


def build_dragonfly(cfg: DragonflyConfig) -> DragonflySystem:
    """Construct the Dragonfly system for ``cfg``."""
    return DragonflySystem(cfg)
