"""Network topologies lowered to the shared router-graph substrate."""

from .dragonfly import DragonflyConfig, DragonflySystem, build_dragonfly
from .fattree import FatTreeSystem, build_fattree
from .graph import LINK_CLASSES, Link, NetworkGraph, Node
from .hammingmesh import (
    HammingMeshConfig,
    HammingMeshSystem,
    build_hammingmesh,
)
from .mesh import (
    DojoSpec,
    MeshBlock,
    MeshSpec,
    SwitchBlock,
    build_dojo_mesh_with_switch,
    build_mesh,
    build_switch_with_terminals,
)
from .polarfly import PolarFlySystem, build_polarfly, polarfly_size
from .properties import (
    average_shortest_path,
    bisection_channels,
    degree_histogram,
    hop_diameter,
    terminal_diameter,
)

__all__ = [
    "LINK_CLASSES", "Link", "NetworkGraph", "Node",
    "DragonflyConfig", "DragonflySystem", "build_dragonfly",
    "FatTreeSystem", "build_fattree",
    "HammingMeshConfig", "HammingMeshSystem", "build_hammingmesh",
    "DojoSpec", "MeshBlock", "MeshSpec", "SwitchBlock",
    "build_dojo_mesh_with_switch", "build_mesh",
    "build_switch_with_terminals",
    "PolarFlySystem", "build_polarfly", "polarfly_size",
    "average_shortest_path", "bisection_channels", "degree_histogram",
    "hop_diameter", "terminal_diameter",
]
