"""PolarFly: the diameter-2 Erdős–Rényi polarity-graph topology [2].

The router graph ER(q) has the points of the projective plane PG(2, q)
as vertices; two distinct points are adjacent iff they are orthogonal
(x1*x2 + y1*y2 + z1*z2 = 0 over GF(q)).  It has q^2 + q + 1 vertices,
degree q or q+1 (self-orthogonal "quadric" points have degree q), and
diameter 2 — asymptotically matching the degree-diameter Moore bound.

This builder supports prime ``q`` (arithmetic over GF(p)); that covers
the paper's analytical uses and the test-scale instances.  The Table III
case study uses the paper's own arithmetic (q = 63, 4033 routers of
radix 64, 32 processors each) via :mod:`repro.analysis.case_study`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .graph import NetworkGraph
from .mesh import DEFAULT_ENERGY

__all__ = ["PolarFlySystem", "build_polarfly", "polarfly_size"]


def _is_prime(n: int) -> bool:
    if n < 2:
        return False
    f = 2
    while f * f <= n:
        if n % f == 0:
            return False
        f += 1
    return True


def polarfly_size(q: int) -> int:
    """Number of routers of ER(q): q^2 + q + 1."""
    return q * q + q + 1


def _projective_points(q: int) -> List[Tuple[int, int, int]]:
    """Canonical representatives of PG(2, q): (1,y,z), (0,1,z), (0,0,1)."""
    pts: List[Tuple[int, int, int]] = []
    for y in range(q):
        for z in range(q):
            pts.append((1, y, z))
    for z in range(q):
        pts.append((0, 1, z))
    pts.append((0, 0, 1))
    return pts


@dataclass
class PolarFlySystem:
    """Built ER(q) graph with terminals attached to every router."""

    q: int
    graph: NetworkGraph
    routers: List[int]
    terminals: List[List[int]]
    #: routers on the quadric (self-orthogonal, degree q).
    quadric: List[int]


def build_polarfly(
    q: int,
    *,
    terminals_per_router: int = 1,
    link_latency: int = 8,
    capacity: int = 1,
) -> PolarFlySystem:
    """Construct ER(q) for prime ``q`` with attached terminals."""
    if not _is_prime(q):
        raise ValueError(
            f"q={q} unsupported: this builder implements prime fields only"
        )
    graph = NetworkGraph(f"polarfly-q{q}")
    pts = _projective_points(q)
    routers: List[int] = []
    terminals: List[List[int]] = []
    chip = 0
    for i, _p in enumerate(pts):
        r = graph.add_node("switch", chip=-1, is_terminal=False, coords=(i,))
        routers.append(r)
        terms = []
        for _t in range(terminals_per_router):
            t = graph.add_node("terminal", chip=chip, is_terminal=True)
            chip += 1
            graph.add_channel(
                t, r, latency=link_latency, capacity=capacity,
                energy_pj=DEFAULT_ENERGY["terminal"], klass="terminal",
            )
            terms.append(t)
        terminals.append(terms)

    quadric: List[int] = []
    for i, a in enumerate(pts):
        if (a[0] * a[0] + a[1] * a[1] + a[2] * a[2]) % q == 0:
            quadric.append(routers[i])
        for j in range(i + 1, len(pts)):
            b = pts[j]
            if (a[0] * b[0] + a[1] * b[1] + a[2] * b[2]) % q == 0:
                graph.add_channel(
                    routers[i], routers[j],
                    latency=link_latency, capacity=capacity,
                    energy_pj=DEFAULT_ENERGY["global"], klass="global",
                )
    graph.validate()
    return PolarFlySystem(q, graph, routers, terminals, quadric)
