"""Declarative experiment specs and the factories that realise them.

An :class:`ExperimentSpec` names a ``(topology, routing, traffic)``
triple symbolically — kind strings plus keyword options — instead of
holding live objects, so it can be pickled into a worker process (or
hashed into a cache key) and rebuilt there from the registries below.

Registered kinds (see :func:`list_topologies` & friends):

========== =========================================================
topology   ``switchless``, ``dragonfly``, ``mesh``, ``switch``
routing    ``switchless``, ``dragonfly``, ``xy_mesh``, ``switch_star``
traffic    ``uniform``, ``bit_reverse``, ``bit_shuffle``,
           ``bit_transpose``, ``hotspot``, ``worst_case``,
           ``ring_allreduce``
========== =========================================================

Topology options may name a config preset (``preset="radix16_equiv"``)
with further keywords forwarded as overrides.  Traffic options accept a
declarative ``scope``: ``None`` (all terminals), ``("group", i)``
(W-group / Dragonfly group ``i``) or ``"snake"`` (a mesh block's
snake-ordered chips, for ring collectives).
"""

from __future__ import annotations

import difflib
import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core import SwitchlessConfig, build_switchless
from ..faults import FaultAwareRouting, FaultMaskedTraffic, FaultSpec, degrade
from ..metrics import build_probes, metrics_to_data, normalize_metrics
from ..network.params import SimParams
from ..routing import (
    DragonflyRouting,
    SwitchlessRouting,
    SwitchStarRouting,
    XYMeshRouting,
)
from ..topology.dragonfly import DragonflyConfig, build_dragonfly
from ..topology.mesh import MeshSpec, build_mesh, build_switch_with_terminals
from ..traffic import (
    BitReverseTraffic,
    BitShuffleTraffic,
    BitTransposeTraffic,
    HotspotTraffic,
    RingAllReduceTraffic,
    UniformTraffic,
    WorstCaseTraffic,
)

__all__ = [
    "ExperimentSpec",
    "build_experiment",
    "build_faults",
    "build_metrics",
    "build_routing",
    "build_system",
    "build_traffic",
    "list_presets",
    "list_routings",
    "list_topologies",
    "list_traffics",
    "point_key",
    "point_seed",
    "register_routing",
    "register_topology",
    "register_traffic",
    "suggest",
]

#: bump when the spec -> simulation mapping changes incompatibly, so
#: stale cache entries are never mistaken for current results.
#:
#: Cache-invalidation policy: every field that can change a simulated
#: number MUST appear in :meth:`ExperimentSpec.config_key` (topology /
#: routing / traffic kinds and options, params, and the ``faults``
#: axis).  Adding such a field therefore reshuffles all point digests —
#: bump this constant alongside so the change is explicit, and note it
#: in CHANGES.md: users with long-lived ``ResultCache`` directories
#: should clear them (entries keyed under the old version are simply
#: never hit again; ``ResultCache.clear()`` reclaims the disk).
#:
#: v2: ``faults`` joined the hashed payload (a degraded run must never
#: alias a cached healthy-wafer result, and vice versa).
#:
#: v3: ``metrics`` joined the hashed payload.  Probes never change the
#: simulated numbers, but a cached probe-off point must not satisfy a
#: probe-on request (its payload carries no channels) — and vice versa
#: a probe-on entry would smuggle channels into probe-off results.
#:
#: v4: the ``workload`` axis (closed-loop runs) joined the hashed
#: payload — present only when non-empty, so the payload *content* of
#: workload-less (open-loop) specs is unchanged from v3; their digests
#: still move with the version bump, which is the point: a closed-loop
#: point must never alias an open-loop one at the same rate.
ENGINE_VERSION = 4


def suggest(name: str, candidates: Sequence[str]) -> str:
    """A ``"; did you mean X?"`` fragment for unknown-name errors.

    Empty when nothing in ``candidates`` is close — callers append the
    result to their error message unconditionally.
    """
    close = difflib.get_close_matches(name, list(candidates), n=3,
                                      cutoff=0.5)
    if not close:
        return ""
    if len(close) == 1:
        return f"; did you mean {close[0]!r}?"
    listed = ", ".join(repr(c) for c in close[:-1])
    return f"; did you mean {listed} or {close[-1]!r}?"


# ----------------------------------------------------------------------
# option freezing: keyword dicts become hashable, canonically ordered
# ----------------------------------------------------------------------
def _freeze(value):
    """Freeze one keyword dict of options (top level only)."""
    return tuple(sorted((k, _freeze_value(v)) for k, v in value.items()))


def _freeze_value(value):
    if isinstance(value, dict):
        # a frozen nested dict would thaw back as a tuple of pairs and
        # silently corrupt the factory's kwargs — fail loudly instead
        raise TypeError(
            "nested dict option values are not supported; pass scalars, "
            "lists/tuples, or flatten the structure into the options"
        )
    if isinstance(value, (list, tuple)):
        return tuple(_freeze_value(v) for v in value)
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"option value {value!r} is not spec-serialisable")


def _thaw_opts(opts: Tuple) -> Dict:
    return {k: _thaw(v) for k, v in opts}


def _thaw(value):
    if isinstance(value, tuple):
        return tuple(_thaw(v) for v in value)
    return value


# ----------------------------------------------------------------------
# registries
# ----------------------------------------------------------------------
_TOPOLOGIES: Dict[str, Callable] = {}
_ROUTINGS: Dict[str, Callable] = {}
_TRAFFICS: Dict[str, Callable] = {}


def _register(table: Dict[str, Callable], name: str) -> Callable:
    def deco(fn: Callable) -> Callable:
        if name in table:
            raise ValueError(f"{name!r} is already registered")
        table[name] = fn
        return fn

    return deco


def register_topology(name: str) -> Callable:
    """Register ``fn(**options) -> system`` under ``name``."""
    return _register(_TOPOLOGIES, name)


def register_routing(name: str) -> Callable:
    """Register ``fn(system, **options) -> routing`` under ``name``."""
    return _register(_ROUTINGS, name)


def register_traffic(name: str) -> Callable:
    """Register ``fn(system, scope, **options) -> traffic``."""
    return _register(_TRAFFICS, name)


def list_topologies() -> List[str]:
    return sorted(_TOPOLOGIES)


def list_routings() -> List[str]:
    return sorted(_ROUTINGS)


def list_traffics() -> List[str]:
    return sorted(_TRAFFICS)


def _lookup(table: Dict[str, Callable], kind: str, what: str) -> Callable:
    """Resolve a registered kind, naming the alternatives on a miss."""
    try:
        return table[kind]
    except KeyError:
        raise ValueError(
            f"unknown {what} kind {kind!r}; registered: {sorted(table)}"
        ) from None


#: topology kinds whose config classes carry named presets.
_PRESET_CONFIGS = {
    "switchless": SwitchlessConfig,
    "dragonfly": DragonflyConfig,
}


def _presets_of(config_cls) -> List[str]:
    """The public classmethod constructors of a config class — exactly
    what ``topology_opts={"preset": name}`` resolves against."""
    return sorted(
        name
        for name, member in vars(config_cls).items()
        if isinstance(member, classmethod) and not name.startswith("_")
    )


def list_presets(topology: str) -> List[str]:
    """Named config presets of a topology kind ([] if it has none)."""
    cls = _PRESET_CONFIGS.get(topology)
    return _presets_of(cls) if cls is not None else []


# ----------------------------------------------------------------------
# the spec itself
def _check_workload(workload: str, workload_opts: Optional[Dict]) -> None:
    """Fail fast on a bad closed-loop axis.

    Full validation (options vs the builder's signature, DAG
    integrity, sizing) happens when the executor builds the workload
    over the traffic's chips; here we check what doesn't need a chip
    count — the name is known and a ``trace`` document parses.
    """
    if not workload:
        if workload_opts:
            raise ValueError(
                "workload_opts without a workload name have no effect"
            )
        return
    # workload -> engine is the package's import direction; the reverse
    # import stays lazy so repro.workload can use suggest() from here
    from ..workload.ir import WORKLOADS
    from ..workload.trace import workload_loads

    candidates = sorted(WORKLOADS) + ["trace"]
    if workload not in candidates:
        raise ValueError(
            f"unknown workload {workload!r}; registered: {candidates}"
            + suggest(workload, candidates)
        )
    if workload == "trace":
        trace = (workload_opts or {}).get("trace")
        if not isinstance(trace, str) or not trace:
            raise ValueError(
                "workload 'trace' needs workload_opts={'trace': <json "
                "document string>}"
            )
        workload_loads(trace)  # fail fast on a malformed document


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ExperimentSpec:
    """One latency-vs-load experiment, reconstructible from data alone.

    ``faults`` is the (frozen) keyword dict of a
    :class:`~repro.faults.FaultSpec` — empty for a perfect wafer.  It is
    part of :meth:`config_key`, so degraded runs and healthy runs can
    never alias each other in the :class:`~repro.engine.ResultCache`.

    ``metrics`` is the frozen probe axis (see :mod:`repro.metrics`):
    ``(name, ((option, value), ...))`` entries naming registered probe
    kinds.  Probes are attached per simulated point and their channels
    ride inside the point's ``SimResult`` — through the cache too,
    which is why the axis is hashed (see the v3 note above).

    ``workload`` switches the spec to *closed-loop* execution: instead
    of open-loop Bernoulli injection at each rate, the executor builds
    the named :mod:`repro.workload` DAG over the traffic's
    participating chips and drives it with a
    :class:`~repro.workload.driver.PhasePlan` (rates become pacing
    bandwidths).  ``workload_opts`` are the builder's keyword options
    (``trace`` carries the whole trace document as one JSON string,
    since nested dicts don't freeze).  Empty = open-loop, the default.
    """

    topology: str
    routing: str
    traffic: str
    topology_opts: Tuple = ()
    routing_opts: Tuple = ()
    traffic_opts: Tuple = ()
    params: SimParams = field(default_factory=SimParams)
    rates: Tuple[float, ...] = ()
    label: str = ""
    faults: Tuple = ()
    metrics: Tuple = ()
    workload: str = ""
    workload_opts: Tuple = ()

    @classmethod
    def create(
        cls,
        *,
        topology: str,
        routing: str,
        traffic: str,
        topology_opts: Optional[Dict] = None,
        routing_opts: Optional[Dict] = None,
        traffic_opts: Optional[Dict] = None,
        params: Optional[SimParams] = None,
        rates: Sequence[float] = (),
        label: str = "",
        faults: Optional[Dict] = None,
        metrics=None,
        workload: str = "",
        workload_opts: Optional[Dict] = None,
    ) -> "ExperimentSpec":
        """Build a spec from keyword dicts, validating the kind names."""
        for kind, table, what in (
            (topology, _TOPOLOGIES, "topology"),
            (routing, _ROUTINGS, "routing"),
            (traffic, _TRAFFICS, "traffic"),
        ):
            _lookup(table, kind, what)
        FaultSpec.from_opts(faults or {})  # fail fast on a bad fault axis
        _check_workload(workload, workload_opts)
        return cls(
            topology=topology,
            routing=routing,
            traffic=traffic,
            topology_opts=_freeze(topology_opts or {}),
            routing_opts=_freeze(routing_opts or {}),
            traffic_opts=_freeze(traffic_opts or {}),
            params=params or SimParams(),
            rates=tuple(float(r) for r in rates),
            label=label,
            faults=_freeze(faults or {}),
            metrics=normalize_metrics(metrics),  # fail fast here too
            workload=workload,
            workload_opts=_freeze(workload_opts or {}),
        )

    def with_faults(self, faults: Optional[Dict]) -> "ExperimentSpec":
        FaultSpec.from_opts(faults or {})
        return replace(self, faults=_freeze(faults or {}))

    def with_workload(
        self, workload: str, workload_opts: Optional[Dict] = None
    ) -> "ExperimentSpec":
        """Copy with the closed-loop axis replaced (``""`` clears)."""
        _check_workload(workload, workload_opts)
        return replace(
            self,
            workload=workload,
            workload_opts=_freeze(workload_opts or {}),
        )

    def with_metrics(self, metrics) -> "ExperimentSpec":
        """Copy with the probe axis replaced (``None``/``()`` clears)."""
        return replace(self, metrics=normalize_metrics(metrics))

    def with_rates(self, rates: Sequence[float]) -> "ExperimentSpec":
        return replace(self, rates=tuple(float(r) for r in rates))

    def with_label(self, label: str) -> "ExperimentSpec":
        return replace(self, label=label)

    # -- declarative (JSON) form ---------------------------------------
    def to_data(self) -> Dict:
        """Plain-data view of the spec, the inverse of :meth:`from_data`.

        Option tuples thaw back to the keyword dicts they froze from, so
        the output is directly JSON-serialisable (tuples become lists;
        :meth:`from_data` re-freezes either form identically).
        """
        data = {
            "topology": self.topology,
            "topology_opts": _thaw_opts(self.topology_opts),
            "routing": self.routing,
            "routing_opts": _thaw_opts(self.routing_opts),
            "traffic": self.traffic,
            "traffic_opts": _thaw_opts(self.traffic_opts),
            "faults": _thaw_opts(self.faults),
            "params": {
                k: getattr(self.params, k)
                for k in self.params.__dataclass_fields__
            },
            "rates": list(self.rates),
            "label": self.label,
        }
        if self.metrics:
            # omitted when empty, so pre-metrics scenario files and
            # probe-less specs serialise byte-identically to before
            data["metrics"] = metrics_to_data(self.metrics)
        if self.workload:
            # same omit-when-empty policy as metrics
            data["workload"] = self.workload
            data["workload_opts"] = _thaw_opts(self.workload_opts)
        return data

    @classmethod
    def from_data(cls, data: Dict) -> "ExperimentSpec":
        """Rebuild a spec from :meth:`to_data` output (or hand-written
        scenario-file JSON).  Unknown ``params`` keys are ignored so old
        files survive new simulator knobs."""
        params_data = data.get("params") or {}
        params = SimParams(
            **{
                k: v
                for k, v in params_data.items()
                if k in SimParams.__dataclass_fields__
            }
        )
        return cls.create(
            topology=data["topology"],
            topology_opts=data.get("topology_opts"),
            routing=data["routing"],
            routing_opts=data.get("routing_opts"),
            traffic=data["traffic"],
            traffic_opts=data.get("traffic_opts"),
            faults=data.get("faults"),
            params=params,
            rates=data.get("rates", ()),
            label=data.get("label", ""),
            metrics=data.get("metrics"),
            workload=data.get("workload", ""),
            workload_opts=data.get("workload_opts"),
        )

    # -- hashing -------------------------------------------------------
    def config_key(self) -> str:
        """Stable digest of everything that affects simulation results.

        The label and rate list are excluded: per-*point* results are
        keyed by :func:`point_key`, so extending a rate list reuses the
        points already simulated.
        """
        payload = {
            "engine_version": ENGINE_VERSION,
            "topology": [self.topology, self.topology_opts],
            "routing": [self.routing, self.routing_opts],
            "traffic": [self.traffic, self.traffic_opts],
            "faults": list(self.faults),
            "metrics": list(self.metrics),
            "params": {
                k: getattr(self.params, k)
                for k in self.params.__dataclass_fields__
            },
        }
        if self.workload:
            # omitted when empty: open-loop payload content is
            # unchanged from v3 (see the v4 note on ENGINE_VERSION)
            payload["workload"] = [self.workload, list(self.workload_opts)]
        blob = json.dumps(payload, sort_keys=True, default=list)
        return hashlib.sha256(blob.encode()).hexdigest()

    def describe(self) -> str:
        base = (
            f"{self.topology}/{self.routing}/{self.traffic}"
            f"[{len(self.rates)} rates]"
        )
        if self.faults:
            base += f"+{FaultSpec.from_opts(_thaw_opts(self.faults)).describe()}"
        if self.metrics:
            base += f"+probes[{','.join(name for name, _ in self.metrics)}]"
        if self.workload:
            base += f"+wl[{self.workload}]"
        return f"{self.label} ({base})" if self.label else base


def point_key(spec: ExperimentSpec, rate: float) -> str:
    """Cache key of one ``(spec, rate)`` point."""
    digest = hashlib.sha256(
        f"{spec.config_key()}|rate={float(rate)!r}".encode()
    ).hexdigest()
    return digest


def point_seed(spec: ExperimentSpec, rate: float) -> int:
    """Deterministic per-point RNG seed, derived from the spec hash.

    Every point of a sweep gets its own seed stream, identical whether
    the point runs serially, in a worker process, or in a later session
    — which is what makes parallel execution bit-identical to serial.
    """
    return int(point_key(spec, rate)[:15], 16)


# ----------------------------------------------------------------------
# realisation
# ----------------------------------------------------------------------
def build_system(spec: ExperimentSpec):
    """Build just the topology/system object of a spec."""
    factory = _lookup(_TOPOLOGIES, spec.topology, "topology")
    return factory(**_thaw_opts(spec.topology_opts))


def build_faults(spec: ExperimentSpec) -> Optional[FaultSpec]:
    """The spec's fault axis as a :class:`FaultSpec` (None when healthy)."""
    if not spec.faults:
        return None
    fspec = FaultSpec.from_opts(_thaw_opts(spec.faults))
    return None if fspec.is_null else fspec


def build_routing(spec: ExperimentSpec, system):
    """Build the routing algorithm of a spec against ``system``.

    When the spec carries a fault axis, the base algorithm is wrapped in
    :class:`~repro.faults.FaultAwareRouting` against the (memoised)
    degraded instance, so every produced route avoids failed hardware.
    """
    factory = _lookup(_ROUTINGS, spec.routing, "routing")
    routing = factory(system, **_thaw_opts(spec.routing_opts))
    fspec = build_faults(spec)
    if fspec is not None:
        routing = FaultAwareRouting(routing, degrade(system, fspec))
    return routing


def build_metrics(spec: ExperimentSpec) -> List:
    """The spec's probe axis realised as probe instances ([] when off)."""
    return build_probes(spec.metrics) if spec.metrics else []


def build_traffic(spec: ExperimentSpec, system):
    """Build the traffic pattern of a spec against ``system``.

    With a fault axis, the pattern is wrapped in
    :class:`~repro.faults.FaultMaskedTraffic`: failed endpoints neither
    inject nor receive (injection masking in the simulator cores).
    """
    factory = _lookup(_TRAFFICS, spec.traffic, "traffic")
    topts = _thaw_opts(spec.traffic_opts)
    scope = _resolve_scope(system, topts.pop("scope", None))
    traffic = factory(system, scope, **topts)
    fspec = build_faults(spec)
    if fspec is not None:
        traffic = FaultMaskedTraffic(traffic, degrade(system, fspec))
    return traffic


def build_experiment(spec: ExperimentSpec, system=None, routing=None):
    """Realise ``(graph, routing, traffic)`` from a spec.

    ``system`` / ``routing`` short-circuit the corresponding builds when
    the caller already holds them (worker-local reuse across the points
    of a sweep — a deterministic routing's route memo then carries over;
    a pre-built routing for a faulted spec must already be the wrapped
    fault-aware one, as :func:`build_routing` returns).
    """
    if system is None:
        system = build_system(spec)
    if routing is None:
        routing = build_routing(spec, system)
    traffic = build_traffic(spec, system)
    return system.graph, routing, traffic


def _resolve_scope(system, scope):
    """Turn a declarative scope into a node-id list."""
    if scope is None:
        return None
    if scope == "snake":
        return system.snake_chip_nodes()
    if isinstance(scope, tuple) and len(scope) == 2 and scope[0] == "group":
        return system.group_nodes(int(scope[1]))
    if isinstance(scope, tuple) and scope and scope[0] == "nodes":
        return [int(n) for n in scope[1]]
    raise ValueError(f"unknown traffic scope {scope!r}")


def _system_groups(system) -> int:
    """Group count of a system, across architecture families."""
    for attr in ("num_wgroups", "num_groups"):
        if hasattr(system, attr):
            return getattr(system, attr)
    raise TypeError(f"{type(system).__name__} has no group structure")


# ----------------------------------------------------------------------
# built-in topology factories
# ----------------------------------------------------------------------
def _config_from(config_cls, opts: Dict):
    preset = opts.pop("preset", None)
    if preset is not None:
        known = _presets_of(config_cls)
        factory = getattr(config_cls, preset, None) if preset in known \
            else None
        if factory is None or not callable(factory):
            raise ValueError(
                f"{config_cls.__name__} has no preset {preset!r}"
                f"{suggest(preset, known)}; available: {known}"
            )
        return factory(**opts)
    return config_cls(**opts)


@register_topology("switchless")
def _topo_switchless(**opts):
    return build_switchless(_config_from(SwitchlessConfig, opts))


@register_topology("dragonfly")
def _topo_dragonfly(**opts):
    return build_dragonfly(_config_from(DragonflyConfig, opts))


@register_topology("mesh")
def _topo_mesh(**opts):
    return build_mesh(MeshSpec(**opts))


@register_topology("switch")
def _topo_switch(num_terminals: int, **opts):
    return build_switch_with_terminals(num_terminals, **opts)


# ----------------------------------------------------------------------
# built-in routing factories
# ----------------------------------------------------------------------
@register_routing("switchless")
def _route_switchless(system, mode: str = "minimal", **opts):
    return SwitchlessRouting(system, mode, **opts)


@register_routing("dragonfly")
def _route_dragonfly(system, mode: str = "minimal", **opts):
    return DragonflyRouting(system, mode, **opts)


@register_routing("xy_mesh")
def _route_xy_mesh(system):
    return XYMeshRouting(system)


@register_routing("switch_star")
def _route_switch_star(system, **opts):
    return SwitchStarRouting(system, **opts)


# ----------------------------------------------------------------------
# built-in traffic factories
# ----------------------------------------------------------------------
@register_traffic("uniform")
def _traffic_uniform(system, scope, **opts):
    return UniformTraffic(system.graph, scope, **opts)


@register_traffic("bit_reverse")
def _traffic_bit_reverse(system, scope):
    return BitReverseTraffic(system.graph, scope)


@register_traffic("bit_shuffle")
def _traffic_bit_shuffle(system, scope):
    return BitShuffleTraffic(system.graph, scope)


@register_traffic("bit_transpose")
def _traffic_bit_transpose(system, scope):
    return BitTransposeTraffic(system.graph, scope)


@register_traffic("hotspot")
def _traffic_hotspot(system, scope, num_hot: int = 4):
    if scope is not None:
        raise ValueError("hotspot derives its own scope from num_hot")
    return HotspotTraffic(
        system.graph, system.group_nodes, _system_groups(system), num_hot
    )


@register_traffic("worst_case")
def _traffic_worst_case(system, scope):
    if scope is not None:
        raise ValueError("worst_case spans all groups; scope must be None")
    return WorstCaseTraffic(
        system.graph, system.group_nodes, _system_groups(system)
    )


@register_traffic("ring_allreduce")
def _traffic_ring_allreduce(system, scope, *, bidirectional: bool = False):
    return RingAllReduceTraffic(
        system.graph, scope, bidirectional=bidirectional
    )
