"""On-disk JSON store for simulated points.

One file per ``(spec, rate)`` point, named by its :func:`~
repro.engine.spec.point_key` digest, so concurrent writers (pool
workers, parallel benchmark jobs) never contend on a shared file.
Writes are atomic (temp file + ``os.replace``); a corrupt or truncated
entry is treated as a miss and overwritten on the next run.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Optional, Union

from ..network.stats import SimResult
from ..obs import REGISTRY

__all__ = ["ResultCache"]

# runtime telemetry (repro.obs): raw cache write volume.  Hit/miss
# accounting lives one layer up in the service ResultStore — counting
# here too would double-report every store lookup.
_M_WRITES = REGISTRY.counter(
    "cache_writes_total", "Point results written to the on-disk cache"
)
_M_WRITE_BYTES = REGISTRY.counter(
    "cache_write_bytes_total", "Bytes of point results written"
)


class ResultCache:
    """Directory-backed result store keyed by point digests."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        if self.root.exists() and not self.root.is_dir():
            raise ValueError(
                f"cache path {self.root} exists and is not a directory"
            )
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, key: str) -> Optional[SimResult]:
        """Stored result for ``key``, or ``None`` (counted as a miss)."""
        path = self._path(key)
        try:
            with path.open() as fh:
                data = json.load(fh)
            result = SimResult.from_dict(data["result"])
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: SimResult, meta: Optional[Dict] = None) -> None:
        """Store ``result`` under ``key`` atomically."""
        payload = {"key": key, "result": result.to_dict()}
        if meta:
            payload["meta"] = meta
        # .part suffix (not .json) so a write abandoned by a killed run
        # is never globbed as a cache entry by __len__/clear
        fd, tmp = tempfile.mkstemp(
            dir=self.root, prefix=".tmp-", suffix=".part"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                text = json.dumps(payload)
                fh.write(text)
            os.replace(tmp, self._path(key))
            _M_WRITES.inc()
            _M_WRITE_BYTES.inc(len(text))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        n = 0
        for path in self.root.glob("*.json"):
            path.unlink()
            n += 1
        for leftover in self.root.glob(".tmp-*.part"):
            leftover.unlink()
        return n
