"""Declarative experiment engine: specs, parallel execution, caching.

The engine decouples *describing* an experiment from *running* it:

* :class:`~repro.engine.spec.ExperimentSpec` is a picklable, hashable
  description of one latency-vs-load curve (topology + routing +
  traffic + :class:`~repro.network.params.SimParams` + rate list) that
  can be rebuilt from scratch inside a worker process;
* :func:`~repro.engine.executor.run_experiments` fans the individual
  ``(spec, rate)`` points out over a ``multiprocessing`` pool with
  deterministic per-point seeds (serial fallback included);
* :class:`~repro.engine.cache.ResultCache` is an on-disk JSON store so
  re-running a benchmark only simulates the missing points.
"""

from .cache import ResultCache
from .executor import (
    PointCallback,
    run_experiments,
    simulate_point,
    spec_saturation,
)
from .spec import (
    ExperimentSpec,
    build_experiment,
    build_faults,
    build_metrics,
    build_routing,
    build_system,
    build_traffic,
    list_presets,
    list_routings,
    list_topologies,
    list_traffics,
    point_key,
    point_seed,
    register_routing,
    register_topology,
    register_traffic,
    suggest,
)

__all__ = [
    "ExperimentSpec",
    "PointCallback",
    "ResultCache",
    "build_experiment",
    "build_faults",
    "build_metrics",
    "build_routing",
    "build_system",
    "build_traffic",
    "list_presets",
    "list_routings",
    "list_topologies",
    "list_traffics",
    "point_key",
    "point_seed",
    "register_routing",
    "register_topology",
    "register_traffic",
    "run_experiments",
    "simulate_point",
    "spec_saturation",
    "suggest",
]
