"""Batch execution of experiment specs over a multiprocessing pool.

The unit of work is one ``(spec, rate)`` point.  Points are simulated
with :func:`~repro.engine.spec.point_seed`-derived seeds, so a point's
result is a pure function of the spec and rate — identical whether it
runs in this process, in a pool worker, or in a previous session whose
result is replayed from the :class:`~repro.engine.cache.ResultCache`.

Sweep semantics match :func:`repro.network.sweep.sweep_rates`: rates
are walked in order and the sweep is cut off after
``stop_after_saturation`` saturated points.  The parallel scheduler may
*speculatively* simulate a few points past the eventual cutoff (they
are cached but excluded from the returned sweep), which is what lets a
single sweep's points run concurrently.
"""

from __future__ import annotations

import logging
import multiprocessing as mp
import os
import sys
import time
from collections import OrderedDict
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    as_completed,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..network.native import THREADS_ENV, NativeBatch, native_available
from ..obs import REGISTRY
from ..obs import trace as obs_trace
from ..network.simulator import (
    CORE_ENV,
    Simulator,
    _attach_probe_channels,
    run_batch,
)
from ..network.stats import SimResult
from ..network.sweep import LoadSweep, assemble_sweep, cutoff_walk
from .cache import ResultCache
from .spec import (
    ENGINE_VERSION,
    ExperimentSpec,
    build_experiment,
    build_metrics,
    build_routing,
    build_system,
    point_key,
    point_seed,
)

__all__ = [
    "PointCallback",
    "PointFailure",
    "run_experiments",
    "simulate_point",
    "spec_saturation",
]


class PointFailure(RuntimeError):
    """A point (or sweep) that keeps killing its worker process.

    Raised by the pooled schedulers after a crash-suspect re-run solo
    and crashed again through its retry budget — a *poison* input.  A
    dead worker only ever fails the points it was carrying: everything
    else in the run completes (or is retried) normally.
    """

#: signature of the optional per-point completion hook of
#: :func:`run_experiments`: ``on_point(spec_index, rate_index, rate,
#: result, source)`` where ``source`` is ``"cache"`` for replayed
#: points and ``"fresh"`` for newly simulated ones.  Exceptions raised
#: by the hook abort the run (in-flight points of the parallel /
#: batched schedulers still land in the cache first).
PointCallback = Callable[[int, int, float, SimResult, str], None]

logger = logging.getLogger("repro.engine")

# runtime telemetry (repro.obs).  Counters/histograms are recorded in
# the *parent* process only — pool workers have their own (discarded)
# registry copies; their spans still land via the REPRO_SPANLOG file.
_M_POINTS = REGISTRY.counter(
    "engine_points_total",
    "Points delivered by run_experiments "
    "(source=cache replayed, source=fresh simulated)",
    ("source",),
)
_M_POINT_SECONDS = REGISTRY.histogram(
    "engine_point_seconds",
    "Wall time per freshly simulated point (serial path)",
)
_M_CRASHES = REGISTRY.counter(
    "engine_worker_crashes_total",
    "Engine pool crashes (a worker died mid-point/sweep)",
)
_M_BATCH_LANES = REGISTRY.histogram(
    "engine_batch_lanes",
    "Lanes packed per batched kernel dispatch (occupancy)",
    buckets=(1, 2, 4, 8, 16, 32, 64, 128),
)

#: environment override for the default worker count.
WORKERS_ENV = "REPRO_WORKERS"

#: environment override for the per-point retry budget: how many times
#: a point that *raised* (not crashed) is re-attempted before its error
#: propagates.  Crash retries (dead worker) use the same budget.
POINT_RETRIES_ENV = "REPRO_POINT_RETRIES"

#: environment override for the engine's batched fast path: unset/auto
#: batches whenever the native core is in play; ``0``/``off`` forces
#: the per-point path.
BATCH_ENV = "REPRO_SIM_BATCH"

#: minimum lanes per batch dispatch.  Each chunk is one packed kernel
#: call; points past a saturation cutoff inside the final chunk are
#: speculative (cached but excluded from the sweep), exactly like the
#: parallel scheduler's in-flight points — so the chunk size bounds
#: speculation the same way ``workers`` does there.  Eight lanes
#: amortize per-chunk setup (batch construction, route-plane lookups)
#: measurably better than four while still keeping at most seven
#: speculative points past a cutoff.
_BATCH_CHUNK_MIN = 8

# Worker-local reuse of built topologies and routings: building a graph
# can cost as much as simulating a low-rate point, every point of a
# sweep shares one, and a reused deterministic routing carries its
# (src, dst) -> path memo from point to point.  Keyed by the spec
# fields that define each object.
_SYSTEM_LRU_SIZE = 4
_systems: "OrderedDict[Tuple, object]" = OrderedDict()
_routings: "OrderedDict[Tuple, object]" = OrderedDict()
# Batched path only: the donor core carrying a routing's resolved
# route plane (arena + memo + numpy mirrors), keyed like _routings, so
# consecutive batched sweeps of one configuration skip route
# resolution entirely.  The per-point path keeps its pre-batch
# behaviour (fresh core, lazy resolution per point).
_route_planes: "OrderedDict[Tuple, object]" = OrderedDict()


def _lru_get(table: "OrderedDict[Tuple, object]", key: Tuple, build):
    obj = table.get(key)
    if obj is None:
        obj = build()
        table[key] = obj
        while len(table) > _SYSTEM_LRU_SIZE:
            table.popitem(last=False)
    else:
        table.move_to_end(key)
    return obj


def simulate_point(spec: ExperimentSpec, rate: float) -> SimResult:
    """Simulate one point with its deterministic derived seed."""
    if os.environ.get("REPRO_CHAOS"):
        # fault injection (tests only): lazy so the production path
        # never imports the service layer; see repro.service.chaos
        from ..service import chaos

        chaos.engine_point(f"{spec.label or spec.describe()}@{rate:g}")
    topo_key = (spec.topology, spec.topology_opts)
    system = _lru_get(_systems, topo_key, lambda: build_system(spec))
    # the fault axis is part of the routing identity: a fault-aware
    # wrapper (and its repair trees / route memo) must never be reused
    # for a different fault instance, nor for the healthy system
    routing = _lru_get(
        _routings,
        topo_key + (spec.routing, spec.routing_opts, spec.faults),
        lambda: build_routing(spec, system),
    )
    graph, routing, traffic = build_experiment(
        spec, system=system, routing=routing
    )
    if spec.workload:
        # closed-loop: phase-scheduled injection, window = makespan
        from ..workload.driver import run_closed_loop

        return run_closed_loop(spec, graph, routing, traffic, rate)
    params = spec.params.scaled(seed=point_seed(spec, rate))
    return Simulator(
        graph, routing, traffic, params, probes=build_metrics(spec)
    ).run(rate)


def _point_retries() -> int:
    env = os.environ.get(POINT_RETRIES_ENV)
    if env:
        return max(0, int(env))
    return 1


def _attempt_point(spec: ExperimentSpec, rate: float) -> SimResult:
    """``simulate_point`` with the per-point retry budget applied.

    A raising point is re-attempted up to ``REPRO_POINT_RETRIES`` extra
    times (results are pure functions of ``(spec, rate)``, so a retry
    is exact); the last error propagates.  Worker *crashes* cannot be
    handled here — the pooled schedulers contain those.
    """
    retries = _point_retries()
    attempt = 0
    while True:
        attempt += 1
        try:
            return simulate_point(spec, rate)
        except Exception as exc:
            if attempt > retries:
                raise
            logger.warning(
                "%s rate=%.3f attempt %d failed (%s: %s); retrying",
                spec.describe(),
                rate,
                attempt,
                type(exc).__name__,
                exc,
            )


def _point_task(task: Tuple[int, int, ExperimentSpec, float]):
    """One pooled point, run inside a worker process.

    The span parents to the ``REPRO_TRACEPARENT`` carrier and lands in
    the ``REPRO_SPANLOG`` file (both inherited through the pool), so
    worker-side timings join the submitting job's trace."""
    si, ri, spec, rate = task
    with obs_trace.span(
        "engine.point",
        label=spec.label or spec.describe(),
        rate=rate,
        worker=os.getpid(),
    ):
        res = _attempt_point(spec, rate)
    return si, ri, res


def _resolve_workers(
    workers: Optional[int],
    total_points: int,
    kernel_threads: int = 1,
) -> int:
    """Pool size: explicit/env/cpu-count default, clamped to both the
    amount of work and the machine.  Oversubscribing a CPU-bound
    simulation only adds pool overhead — an early benchmark forced 4
    workers onto a 1-CPU host and reported the resulting 0.7x slowdown
    as a parallel 'speedup'.

    ``kernel_threads`` is how many threads each worker's kernel calls
    will spin up (the batched path's lane threads); the clamp keeps
    ``workers x kernel_threads <= cpu_count`` so process- and
    thread-level parallelism never multiply into oversubscription.
    """
    cpus = os.cpu_count() or 1
    if workers is None:
        env = os.environ.get(WORKERS_ENV)
        workers = int(env) if env else cpus
    budget = max(1, cpus // max(1, kernel_threads))
    return max(1, min(workers, total_points, budget))


def _kernel_threads() -> int:
    """Lane threads per batched kernel call (``REPRO_SIM_THREADS`` or
    the CPU count; :func:`repro.network.native.resolve_threads` clamps
    to the actual lane count per call)."""
    env = os.environ.get(THREADS_ENV)
    if env:
        return max(1, int(env))
    return os.cpu_count() or 1


def _batch_enabled(batch: Optional[bool]) -> bool:
    """Whether run_experiments takes the batched fast path.

    Explicit ``batch=`` wins; otherwise auto: batch when the native
    core would be the session's core (available and not overridden via
    ``REPRO_SIM_CORE``) and ``REPRO_SIM_BATCH`` does not disable it.
    The auto rule keeps non-native sessions on the per-point path,
    whose process pool is what parallelises pure-Python cores.
    """
    if batch is not None:
        return bool(batch)
    env = (os.environ.get(BATCH_ENV) or "").strip().lower()
    if env in ("0", "off", "no", "false"):
        return False
    core = os.environ.get(CORE_ENV)
    if core and core not in ("native",):
        return False
    return native_available()


def _pool_context():
    # fork is the cheap path but is only reliably safe on Linux; macOS
    # made spawn the default because forking a process with Objective-C
    # / Accelerate state aborts or hangs in the child.
    if sys.platform.startswith("linux"):
        methods = mp.get_all_start_methods()
        if "fork" in methods:
            return mp.get_context("fork")
    return mp.get_context("spawn")


# ----------------------------------------------------------------------
# the executor
# ----------------------------------------------------------------------
def run_experiments(
    specs: Sequence[ExperimentSpec],
    *,
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    stop_after_saturation: int = 1,
    batch: Optional[bool] = None,
    on_point: Optional[PointCallback] = None,
) -> List[LoadSweep]:
    """Run every spec's sweep, fanning points out over a process pool.

    Parameters
    ----------
    specs:
        Experiments to run; one :class:`LoadSweep` is returned per spec,
        in order.
    workers:
        Pool size.  ``None`` reads ``REPRO_WORKERS`` and falls back to
        the CPU count; ``<= 1`` selects the serial in-process path,
        which runs points strictly in rate order (no speculation).
        On the batched path, workers parallelise *sweeps* while kernel
        threads parallelise lanes within a sweep, clamped together so
        ``workers x threads <= cpu_count``.
    cache:
        Optional on-disk store; previously simulated points are loaded
        instead of re-run, and fresh points are written back.
    stop_after_saturation:
        Cut each sweep off after this many saturated points, exactly as
        :func:`repro.network.sweep.sweep_rates` does.
    batch:
        ``True``/``False`` forces the batched fast path on/off;
        ``None`` (default) auto-enables it when the native core is the
        session's core (see ``REPRO_SIM_BATCH``).  Batched results are
        bit-identical to per-point results: each lane keeps its
        :func:`~repro.engine.spec.point_seed`-derived seed, cache
        entries are interchangeable between both paths, and saturation
        cutoffs still stop a sweep (a final chunk may speculate a few
        points past the cutoff, exactly like the parallel scheduler).
    on_point:
        Optional :data:`PointCallback` invoked in *this* process as each
        point completes — cache replays first (``source="cache"``), then
        fresh points in completion order (``source="fresh"``).  Its
        events may be a superset of the returned sweeps: speculative
        points past a saturation cutoff are reported (and cached) but
        excluded from the assembled results.  Raising from the hook
        aborts the run; already-completed points stay cached, which is
        how the service layer implements job cancellation.
    """
    if stop_after_saturation < 1:
        raise ValueError("stop_after_saturation must be >= 1")
    specs = list(specs)
    have: List[Dict[int, SimResult]] = [{} for _ in specs]

    with obs_trace.span("engine.run", specs=len(specs)) as run_span:
        # Replay every cached point first: cutoffs may be decided.
        if cache is not None:
            with obs_trace.span("engine.cache_replay") as replay_span:
                replayed = 0
                for si, spec in enumerate(specs):
                    for ri, rate in enumerate(spec.rates):
                        res = cache.get(point_key(spec, rate))
                        if res is not None:
                            have[si][ri] = res
                            replayed += 1
                            if on_point is not None:
                                on_point(si, ri, rate, res, "cache")
                if replayed:
                    _M_POINTS.inc(replayed, source="cache")
                replay_span.set(points=replayed)

        total_missing = sum(
            1
            for si, spec in enumerate(specs)
            for ri in range(len(spec.rates))
            if ri not in have[si]
        )
        # closed-loop specs can't ride the packed native kernel (the
        # plan needs a per-cycle callback); they take the pooled path
        use_batch = (
            total_missing > 0
            and _batch_enabled(batch)
            and not any(s.workload for s in specs)
        )
        if use_batch:
            threads = _kernel_threads()
            workers = _resolve_workers(
                workers, len(specs), kernel_threads=threads
            )
        else:
            workers = _resolve_workers(workers, total_missing)
        run_span.set(missing=total_missing, workers=workers)
        t0 = time.perf_counter()

        # Advertise the ambient context to pool workers: both pooled
        # schedulers create their pools inside this window, so forked
        # and spawned children alike inherit the carrier and parent
        # their spans correctly (spans land via REPRO_SPANLOG).
        ctx = obs_trace.current_context()
        saved = os.environ.get(obs_trace.TRACEPARENT_ENV)
        saved_pid = os.environ.get(obs_trace.TRACEPARENT_PID_ENV)
        if ctx is not None and obs_trace.tracing_active():
            os.environ[obs_trace.TRACEPARENT_ENV] = (
                obs_trace.format_traceparent(ctx)
            )
            # mark the carrier as ours: only *child* processes read it
            os.environ[obs_trace.TRACEPARENT_PID_ENV] = str(os.getpid())
        try:
            if total_missing == 0:
                pass  # everything replayed from cache
            elif use_batch:
                _run_batched(
                    specs, have, cache, stop_after_saturation, workers,
                    threads, on_point,
                )
            elif workers <= 1:
                _run_serial(
                    specs, have, cache, stop_after_saturation, on_point
                )
            else:
                _run_parallel(
                    specs, have, cache, stop_after_saturation, workers,
                    on_point,
                )
        finally:
            if saved is None:
                os.environ.pop(obs_trace.TRACEPARENT_ENV, None)
            else:
                os.environ[obs_trace.TRACEPARENT_ENV] = saved
            if saved_pid is None:
                os.environ.pop(obs_trace.TRACEPARENT_PID_ENV, None)
            else:
                os.environ[obs_trace.TRACEPARENT_PID_ENV] = saved_pid

        sweeps = [
            assemble_sweep(
                spec.label or spec.describe(),
                spec.rates,
                have[si],
                stop_after_saturation,
            )
            for si, spec in enumerate(specs)
        ]
        logger.info(
            "ran %d spec(s) (%d points missing of %d) with %d "
            "worker(s) in %.2fs",
            len(specs),
            total_missing,
            sum(len(s.rates) for s in specs),
            workers,
            time.perf_counter() - t0,
        )
    return sweeps


def _store(
    cache: Optional[ResultCache],
    spec: ExperimentSpec,
    rate: float,
    res: SimResult,
) -> None:
    if cache is not None:
        cache.put(
            point_key(spec, rate),
            res,
            # the engine version is hashed into the key, so stamping it
            # here is redundant for lookups — but it lets the store's
            # stats scan report the version mix of a long-lived
            # directory (see ``repro-dragonfly cache stats``)
            meta={
                "label": spec.label,
                "rate": rate,
                "engine": ENGINE_VERSION,
            },
        )


def _run_serial(
    specs: Sequence[ExperimentSpec],
    have: List[Dict[int, SimResult]],
    cache: Optional[ResultCache],
    stop_after_saturation: int,
    on_point: Optional[PointCallback] = None,
) -> None:
    for si, spec in enumerate(specs):
        while True:
            complete, ri = cutoff_walk(
                len(spec.rates), have[si], stop_after_saturation
            )
            if complete:
                break
            rate = spec.rates[ri]
            t0 = time.perf_counter()
            with obs_trace.span(
                "engine.point",
                label=spec.label or spec.describe(),
                rate=rate,
            ):
                res = _attempt_point(spec, rate)
            elapsed = time.perf_counter() - t0
            logger.debug(
                "%s rate=%.3f done in %.2fs",
                spec.describe(), rate, elapsed,
            )
            _M_POINTS.inc(source="fresh")
            _M_POINT_SECONDS.observe(elapsed)
            have[si][ri] = res
            with obs_trace.span("store.write", rate=rate):
                _store(cache, spec, rate, res)
            if on_point is not None:
                on_point(si, ri, rate, res, "fresh")


def _run_parallel(
    specs: Sequence[ExperimentSpec],
    have: List[Dict[int, SimResult]],
    cache: Optional[ResultCache],
    stop_after_saturation: int,
    workers: int,
    on_point: Optional[PointCallback] = None,
) -> None:
    """Completion-driven scheduler: workers never idle on a barrier.

    Up to ``workers`` points are in flight at once, drawn round-robin
    across incomplete sweeps in rate order; each completion immediately
    refills the freed worker.  Saturation cutoffs are re-evaluated on
    every completion, so a sweep that saturates stops feeding new points
    (in-flight ones finish, are cached, and are simply excluded by the
    final assembly — results are order-independent thanks to the
    per-point derived seeds).

    **Crash containment.**  A worker dying (SIGKILL, segfault, OOM)
    breaks the whole ``ProcessPoolExecutor``; every in-flight point is
    lost but nothing tells us *which* point killed it.  The lost points
    go on **probation**: a fresh pool re-runs them one at a time, so a
    poison point crashes solo and is blamed definitively — after the
    retry budget it raises :class:`PointFailure`; innocent casualties
    complete on their first probation pass and the scheduler resumes
    full-width.  Completed points are already cached, so a crash never
    loses finished work.
    """
    ctx = _pool_context()
    max_crashes = 1 + _point_retries()
    crashes: Dict[Tuple[int, int], int] = {}
    probation: List[Tuple[int, int]] = []

    def record(si: int, ri: int, res: SimResult) -> None:
        have[si][ri] = res
        _M_POINTS.inc(source="fresh")
        _store(cache, specs[si], specs[si].rates[ri], res)
        if on_point is not None:
            on_point(si, ri, specs[si].rates[ri], res, "fresh")

    def next_points(
        inflight: Set[Tuple[int, int]], limit: int
    ) -> List[Tuple[int, int]]:
        """Points to submit, round-robin across incomplete sweeps."""
        queues = []
        for si, spec in enumerate(specs):
            complete, first = cutoff_walk(
                len(spec.rates), have[si], stop_after_saturation
            )
            if complete:
                continue
            queue = [
                (si, ri)
                for ri in range(first, len(spec.rates))
                if ri not in have[si] and (si, ri) not in inflight
            ]
            if queue:
                queues.append(queue)
        picked: List[Tuple[int, int]] = []
        depth = 0
        while len(picked) < limit and queues:
            progressed = False
            for queue in queues:
                if depth >= len(queue) or len(picked) >= limit:
                    continue
                picked.append(queue[depth])
                progressed = True
            if not progressed:
                break
            depth += 1
        return picked

    while True:
        inflight_now: List[Tuple[int, int]] = []
        try:
            with ProcessPoolExecutor(
                max_workers=workers, mp_context=ctx
            ) as pool:
                # probation: crash suspects re-run solo for blame
                while probation:
                    si, ri = probation[0]
                    inflight_now = [(si, ri)]
                    future = pool.submit(
                        _point_task,
                        (si, ri, specs[si], specs[si].rates[ri]),
                    )
                    _, _, res = future.result()
                    record(si, ri, res)
                    probation.pop(0)
                    crashes.pop((si, ri), None)
                inflight_now = []
                futures: Dict = {}

                def submit(si: int, ri: int) -> None:
                    futures[
                        pool.submit(
                            _point_task,
                            (si, ri, specs[si], specs[si].rates[ri]),
                        )
                    ] = (si, ri)

                for si, ri in next_points(set(), workers):
                    submit(si, ri)
                while futures:
                    inflight_now = list(futures.values())
                    done_set, _ = wait(
                        set(futures), return_when=FIRST_COMPLETED
                    )
                    for future in done_set:
                        si, ri = futures.pop(future)
                        _, _, res = future.result()
                        record(si, ri, res)
                        logger.debug(
                            "%s rate=%.3f done (%d in flight)",
                            specs[si].describe(),
                            specs[si].rates[ri],
                            len(futures),
                        )
                    for si, ri in next_points(
                        set(futures.values()), workers - len(futures)
                    ):
                        submit(si, ri)
                return
        except BrokenProcessPool:
            _M_CRASHES.inc()
            lost = [
                (si, ri)
                for si, ri in inflight_now
                if ri not in have[si]
            ]
            if len(lost) == 1:
                point = lost[0]
                crashes[point] = crashes.get(point, 0) + 1
                if crashes[point] >= max_crashes:
                    si, ri = point
                    raise PointFailure(
                        f"{specs[si].describe()} rate="
                        f"{specs[si].rates[ri]:.3f} crashed its worker "
                        f"process {crashes[point]} time(s); giving up "
                        "on this point (other points completed "
                        "normally)"
                    ) from None
            probation = lost + [p for p in probation if p not in lost]
            logger.warning(
                "engine pool crashed (worker died); re-running %d "
                "lost point(s) under probation",
                len(lost),
            )


def _sweep_batch(
    spec: ExperimentSpec,
    have_ri: Dict[int, SimResult],
    stop_after_saturation: int,
    threads: int,
    on_point=None,
) -> Dict[int, SimResult]:
    """Walk one spec's sweep in packed lane batches.

    Each iteration dispatches the next ``max(_BATCH_CHUNK_MIN,
    threads)`` missing rates as one packed batch — per-lane seeds are
    the same :func:`~repro.engine.spec.point_seed` values
    ``simulate_point`` uses, so every point's result is bit-identical
    to the per-point path.  The cutoff walk re-runs between chunks, so
    a saturated sweep stops after at most one speculative chunk.  On
    the native path consecutive chunks hand the resolved route plane
    forward (``route_donor``), so each (src, dst) route is resolved
    once per *sweep*, not once per chunk.  Returns only the newly
    simulated points.
    """
    with obs_trace.span(
        "route.resolve", label=spec.label or spec.describe()
    ):
        topo_key = (spec.topology, spec.topology_opts)
        system = _lru_get(
            _systems, topo_key, lambda: build_system(spec)
        )
        routing_key = topo_key + (
            spec.routing, spec.routing_opts, spec.faults
        )
        routing = _lru_get(
            _routings, routing_key, lambda: build_routing(spec, system)
        )
        graph, routing, traffic = build_experiment(
            spec, system=system, routing=routing
        )
    probes = build_metrics(spec)
    native = (
        os.environ.get(CORE_ENV) in (None, "", "native")
        and native_available()
    )
    # NativeBatch validates the donor (same graph/routing objects,
    # deterministic) and silently ignores a stale one, so a plane
    # whose routing was rebuilt after LRU eviction is never misused.
    donor = _route_planes.get(routing_key) if native else None
    chunk_size = max(_BATCH_CHUNK_MIN, threads)
    merged = dict(have_ri)
    new: Dict[int, SimResult] = {}
    while True:
        complete, first = cutoff_walk(
            len(spec.rates), merged, stop_after_saturation
        )
        if complete:
            break
        pending = [
            ri
            for ri in range(first, len(spec.rates))
            if ri not in merged
        ]
        chunk = pending[:chunk_size]
        lanes = [
            (point_seed(spec, spec.rates[ri]), spec.rates[ri])
            for ri in chunk
        ]
        if os.environ.get("REPRO_CHAOS"):
            from ..service import chaos

            for _, lane_rate in lanes:
                chaos.engine_point(
                    f"{spec.label or spec.describe()}@{lane_rate:g}"
                )
        t0 = time.perf_counter()
        _M_BATCH_LANES.observe(len(chunk))
        if native:
            with obs_trace.span(
                "kernel.prepare",
                lanes=len(chunk),
                donor=donor is not None,
            ):
                batch = NativeBatch(
                    graph,
                    routing,
                    traffic,
                    spec.params,
                    [seed for seed, _ in lanes],
                    probes=bool(probes),
                    route_donor=donor,
                )
            with obs_trace.span(
                "kernel.run", lanes=len(chunk), threads=threads
            ):
                results = batch.run(
                    [rate for _, rate in lanes], threads=threads
                )
            donor = batch.route_donor or donor
            if probes:
                with obs_trace.span("probe.decode", lanes=len(chunk)):
                    for (_, rate), core, res in zip(
                        lanes, batch.lanes, results
                    ):
                        _attach_probe_channels(core, rate, probes, res)
        else:
            with obs_trace.span(
                "kernel.run",
                lanes=len(chunk),
                threads=threads,
                core="python",
            ):
                results = run_batch(
                    graph,
                    routing,
                    traffic,
                    spec.params,
                    lanes,
                    threads=threads,
                    probes=probes or None,
                )
        logger.debug(
            "%s batched %d lane(s) in %.2fs",
            spec.describe(), len(chunk), time.perf_counter() - t0,
        )
        for ri, res in zip(chunk, results):
            merged[ri] = res
            new[ri] = res
            if on_point is not None:
                on_point(ri, spec.rates[ri], res)
    if native and donor is not None:
        _route_planes[routing_key] = donor
        _route_planes.move_to_end(routing_key)
        while len(_route_planes) > _SYSTEM_LRU_SIZE:
            _route_planes.popitem(last=False)
    return new


def _sweep_batch_task(task):
    si, spec, have_ri, stop_after_saturation, threads = task
    return si, _sweep_batch(spec, have_ri, stop_after_saturation, threads)


def _run_batched(
    specs: Sequence[ExperimentSpec],
    have: List[Dict[int, SimResult]],
    cache: Optional[ResultCache],
    stop_after_saturation: int,
    workers: int,
    threads: int,
    on_point: Optional[PointCallback] = None,
) -> None:
    """Batched scheduler: one packed kernel call per chunk of rates.

    The unit of pool work is a whole sweep (its chunks must run in
    cutoff order), so processes parallelise across specs while kernel
    threads parallelise lanes within each chunk.  Cache writes stay in
    the parent, as in the per-point schedulers.  ``on_point`` fires in
    the parent: per chunk on the inline path, per completed sweep on
    the pooled path (the callback is not picklable in general, so it
    never crosses into a worker).
    """
    incomplete = [
        si
        for si, spec in enumerate(specs)
        if not cutoff_walk(
            len(spec.rates), have[si], stop_after_saturation
        )[0]
    ]
    if workers > 1 and len(incomplete) > 1:
        ctx = _pool_context()
        max_crashes = 1 + _point_retries()
        crashes: Dict[int, int] = {}
        todo = list(incomplete)
        solo = False  # after a crash, re-run suspects one at a time

        def record_sweep(si: int, new: Dict[int, SimResult]) -> None:
            if new:
                _M_POINTS.inc(len(new), source="fresh")
            for ri in sorted(new):
                res = new[ri]
                have[si][ri] = res
                _store(cache, specs[si], specs[si].rates[ri], res)
                if on_point is not None:
                    on_point(si, ri, specs[si].rates[ri], res, "fresh")

        while todo:
            batch_now = todo[:1] if solo else list(todo)
            try:
                with ProcessPoolExecutor(
                    max_workers=min(workers, len(batch_now)),
                    mp_context=ctx,
                ) as pool:
                    futures = {
                        pool.submit(
                            _sweep_batch_task,
                            (
                                si,
                                specs[si],
                                have[si],
                                stop_after_saturation,
                                threads,
                            ),
                        ): si
                        for si in batch_now
                    }
                    for future in as_completed(futures):
                        si, new = future.result()
                        record_sweep(si, new)
                        todo.remove(si)
            except BrokenProcessPool:
                _M_CRASHES.inc()
                lost = [si for si in batch_now if si in todo]
                if len(lost) == 1:
                    si = lost[0]
                    crashes[si] = crashes.get(si, 0) + 1
                    if crashes[si] >= max_crashes:
                        raise PointFailure(
                            f"sweep {specs[si].describe()} crashed "
                            f"its worker process {crashes[si]} "
                            "time(s); giving up on this sweep (other "
                            "sweeps completed normally)"
                        ) from None
                solo = True
                logger.warning(
                    "engine pool crashed (worker died); re-running "
                    "%d lost sweep(s) one at a time",
                    len(lost),
                )
    else:
        for si in incomplete:

            def _chunk_point(ri, rate, res, si=si):
                have[si][ri] = res
                _M_POINTS.inc(source="fresh")
                _store(cache, specs[si], rate, res)
                if on_point is not None:
                    on_point(si, ri, rate, res, "fresh")

            _sweep_batch(
                specs[si],
                have[si],
                stop_after_saturation,
                threads,
                on_point=_chunk_point,
            )


def spec_saturation(
    spec: ExperimentSpec,
    *,
    lo: float = 0.05,
    hi: float = 4.0,
    tol: float = 0.05,
    max_iter: int = 12,
    cache: Optional[ResultCache] = None,
) -> float:
    """Bisect a spec's saturation rate (engine twin of
    :func:`repro.network.sweep.find_saturation`).

    Probes reuse the worker-local system and, when a ``cache`` is given,
    are persisted like any other point, so repeated searches converge
    from cached probes.
    """

    def probe(rate: float) -> bool:
        res = None
        if cache is not None:
            res = cache.get(point_key(spec, rate))
        if res is None:
            res = simulate_point(spec, rate)
            _store(cache, spec, rate, res)
        return res.saturated

    if probe(lo):
        return 0.0
    if not probe(hi):
        return hi
    good, bad = lo, hi
    for _ in range(max_iter):
        if bad - good <= tol:
            break
        mid = 0.5 * (good + bad)
        if probe(mid):
            bad = mid
        else:
            good = mid
    return good
