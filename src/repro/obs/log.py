"""Structured logging that carries the trace context.

The service historically logged through bare
``logging.getLogger("repro.service")`` calls with printf formatting —
fine for a terminal, useless for correlating a log line with the job
and trace it belongs to.  This module keeps the stdlib ``logging``
pipeline (handlers, levels, capture in tests all still work) and adds:

* :func:`get_logger` — returns a :class:`ContextLogger` whose
  ``info``/``warning``/``error``/``exception`` accept arbitrary
  ``**fields`` (``job=...``, ``state=...``) and stamp every record
  with the current ``trace_id``/``span_id``;
* :func:`setup_logging` — installs a root handler with either the
  human ``text`` format (message, then ``| key=value`` pairs) or the
  machine ``json`` format (one NDJSON object per line), selected by
  the ``serve --log-format`` flag.

Exception logging goes through ``exception()`` (or
``error(..., exc_info=True)``) so tracebacks ride the record's
``exc_info`` and both formatters render them consistently — no more
hand-formatted traceback strings glued into the message.
"""

from __future__ import annotations

import json
import logging
import sys
import time
import traceback
from typing import Optional

from . import trace

__all__ = [
    "ContextLogger",
    "JsonFormatter",
    "TextFormatter",
    "get_logger",
    "setup_logging",
]

#: attribute under which structured fields ride the LogRecord.
_FIELDS_ATTR = "repro_fields"


class ContextLogger(logging.LoggerAdapter):
    """LoggerAdapter turning ``**fields`` kwargs into structured data.

    ``log.info("job %s queued", job_id, job=job_id, state="queued")``
    — printf args still format the human message; the keyword fields
    travel on the record for the JSON formatter (and the text
    formatter's ``| k=v`` tail).  The current trace context is
    attached automatically at call time.
    """

    # kwargs the stdlib logging call signature owns.
    _PASSTHROUGH = ("exc_info", "stack_info", "stacklevel")

    def __init__(self, logger: logging.Logger):
        super().__init__(logger, {})

    def process(self, msg, kwargs):
        fields = {}
        passthrough = {}
        for key, value in kwargs.items():
            if key in self._PASSTHROUGH:
                passthrough[key] = value
            elif key == "extra":
                # merge pre-built extra dicts from legacy call sites
                fields.update(value or {})
            else:
                fields[key] = value
        ctx = trace.current_context()
        if ctx is not None:
            fields.setdefault("trace_id", ctx.trace_id)
            fields.setdefault("span_id", ctx.span_id)
        passthrough["extra"] = {_FIELDS_ATTR: fields}
        return msg, passthrough


def get_logger(name: str) -> ContextLogger:
    return ContextLogger(logging.getLogger(name))


def _record_fields(record: logging.LogRecord) -> dict:
    return getattr(record, _FIELDS_ATTR, None) or {}


class TextFormatter(logging.Formatter):
    """Human format: classic prefix, message, ``| k=v`` field tail."""

    default_format = "%(asctime)s %(levelname)s %(name)s: %(message)s"

    def __init__(self):
        super().__init__(self.default_format)

    def format(self, record: logging.LogRecord) -> str:
        base = super().format(record)
        fields = _record_fields(record)
        if fields:
            tail = " ".join(f"{k}={v}" for k, v in fields.items())
            base = f"{base} | {tail}"
        return base


class JsonFormatter(logging.Formatter):
    """One NDJSON object per record: ``{ts, level, logger, msg, ...}``."""

    def format(self, record: logging.LogRecord) -> str:
        out = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "msg": record.getMessage(),
        }
        out.update(_record_fields(record))
        if record.exc_info and record.exc_info[0] is not None:
            out["exc_type"] = record.exc_info[0].__name__
            out["traceback"] = "".join(
                traceback.format_exception(*record.exc_info)
            ).rstrip()
        return json.dumps(out, default=str)


def setup_logging(
    fmt: str = "text",
    level: int = logging.INFO,
    stream=None,
    logger_name: Optional[str] = None,
) -> logging.Handler:
    """Install a stream handler with the chosen format.

    ``fmt`` is ``"text"`` or ``"json"``.  Configures the named logger
    (default: root) idempotently — an existing handler installed by a
    previous call is replaced, foreign handlers are left alone.
    Returns the installed handler (tests detach it on teardown).
    """
    if fmt not in ("text", "json"):
        raise ValueError(f"log format must be 'text' or 'json', got {fmt!r}")
    target = logging.getLogger(logger_name)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(JsonFormatter() if fmt == "json" else TextFormatter())
    handler._repro_obs_handler = True  # type: ignore[attr-defined]
    for old in list(target.handlers):
        if getattr(old, "_repro_obs_handler", False):
            target.removeHandler(old)
    target.addHandler(handler)
    target.setLevel(level)
    return handler


def _utc_iso(ts: Optional[float] = None) -> str:
    """Compact UTC timestamp for ad-hoc CLI output."""
    ts = time.time() if ts is None else ts
    return time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime(ts)) + "Z"
