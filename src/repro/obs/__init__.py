"""Runtime observability: tracing, metrics and structured logging.

``repro.obs`` is the telemetry plane of the *runtime* (service, engine
executor, HTTP layer) — distinct from :mod:`repro.metrics`, which
measures the *simulated network* (per-link flit load, misrouting, …).
A :class:`~repro.metrics.Probe` answers "what did the wafer's traffic
do?"; this package answers "where did this job spend its wall-clock
and what is the fleet doing right now?".

Four stdlib-only modules:

* :mod:`repro.obs.trace` — ``trace_id``/``span_id`` context
  (``contextvars``-propagated in-process, W3C-``traceparent``-style
  over HTTP and ``REPRO_TRACEPARENT`` into engine worker processes)
  with a ``span()`` context manager that no-ops when no sink is
  installed;
* :mod:`repro.obs.spanlog` — the span sink: bounded in-memory index
  per trace plus an NDJSON file (``repro.span/v1``) under the service
  ``--state-dir``;
* :mod:`repro.obs.registry` — process-wide thread-safe metrics
  registry (labelled counters / gauges / histograms) with Prometheus
  text and JSON exporters in :mod:`repro.obs.export`;
* :mod:`repro.obs.log` — structured NDJSON logging helpers that stamp
  every record with the current trace context.
"""

from .export import parse_prometheus, render_waterfall, to_json, to_prometheus
from .log import get_logger, setup_logging
from .registry import REGISTRY, Counter, Gauge, Histogram, MetricsRegistry
from .spanlog import SPAN_SCHEMA, SpanLog
from .trace import (
    SpanContext,
    current_context,
    format_traceparent,
    new_context,
    parse_traceparent,
    span,
    tracing_active,
    use_context,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "SPAN_SCHEMA",
    "SpanContext",
    "SpanLog",
    "current_context",
    "format_traceparent",
    "get_logger",
    "new_context",
    "parse_prometheus",
    "parse_traceparent",
    "render_waterfall",
    "setup_logging",
    "span",
    "to_json",
    "to_prometheus",
    "tracing_active",
    "use_context",
]
