"""Distributed trace context for the service + engine runtime.

A *trace* follows one unit of work (a service job, a CLI run) across
threads, processes and the HTTP socket; a *span* is one timed stage
inside it (queue wait, kernel chunk, store write).  The design is a
deliberately small subset of W3C Trace Context / OpenTelemetry:

* :class:`SpanContext` — ``(trace_id, span_id)``, the only thing that
  crosses boundaries.  In-process it rides a :mod:`contextvars`
  variable (so it survives any call depth and is thread-local by
  construction); over HTTP it is a ``traceparent`` header
  (``00-<trace_id>-<span_id>-01``); into engine worker processes it is
  the ``REPRO_TRACEPARENT`` environment variable, set by
  ``run_experiments`` around pool creation so forked and spawned
  workers alike inherit it.
* :func:`span` — context manager creating a child span of the current
  context, timing its body, recording exceptions, and emitting the
  finished span to every installed sink.  With **no sink installed and
  no ambient context**, it yields a shared no-op span and touches
  neither the clock nor the contextvar — the disabled path costs one
  list check.
* Sinks — callables taking one span dict (see :data:`SPAN_KEYS`).  The
  service installs a :class:`~repro.obs.spanlog.SpanLog`; worker
  processes with no inherited sink lazily bootstrap a file-append sink
  from ``REPRO_SPANLOG``.

Span dicts are schema-tagged ``repro.span/v1``; see
:mod:`repro.obs.spanlog` for the stored form.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

__all__ = [
    "SPANLOG_ENV",
    "TRACEPARENT_ENV",
    "TRACEPARENT_PID_ENV",
    "Span",
    "SpanContext",
    "add_sink",
    "current_context",
    "emit",
    "format_traceparent",
    "new_context",
    "new_id",
    "parse_traceparent",
    "remove_sink",
    "span",
    "start_span",
    "tracing_active",
    "use_context",
]

#: environment carrier of the ambient span context (W3C traceparent
#: value), read by engine worker processes.
TRACEPARENT_ENV = "REPRO_TRACEPARENT"

#: PID of the process that set :data:`TRACEPARENT_ENV`.  The carrier
#: is for *child* processes only — in the process that exported it,
#: unrelated threads (concurrent HTTP handlers, the watchdog) must not
#: inherit the running execution's context from the environment.
TRACEPARENT_PID_ENV = "REPRO_TRACEPARENT_PID"

#: environment carrier of the span-log path, so worker processes
#: without an inherited in-memory sink can still persist spans.
SPANLOG_ENV = "REPRO_SPANLOG"


def new_id(nbytes: int = 8) -> str:
    """A random lowercase-hex id (8 bytes = span, 16 bytes = trace)."""
    return os.urandom(nbytes).hex()


@dataclass(frozen=True)
class SpanContext:
    """The propagated part of a span: which trace, which parent."""

    trace_id: str
    span_id: str


def new_context() -> SpanContext:
    return SpanContext(trace_id=new_id(16), span_id=new_id(8))


def format_traceparent(ctx: SpanContext) -> str:
    """W3C ``traceparent`` header value for ``ctx``."""
    return f"00-{ctx.trace_id}-{ctx.span_id}-01"


def parse_traceparent(value: Optional[str]) -> Optional[SpanContext]:
    """Parse a ``traceparent`` value; ``None`` on anything malformed.

    Tolerant on purpose: a bad header from a foreign client must never
    fail the request, it just starts a fresh trace.
    """
    if not value:
        return None
    parts = value.strip().split("-")
    if len(parts) < 4:
        return None
    _, trace_id, span_id = parts[0], parts[1], parts[2]
    if len(trace_id) != 32 or len(span_id) != 16:
        return None
    try:
        int(trace_id, 16), int(span_id, 16)
    except ValueError:
        return None
    if int(trace_id, 16) == 0 or int(span_id, 16) == 0:
        return None
    return SpanContext(trace_id=trace_id, span_id=span_id)


# ----------------------------------------------------------------------
# ambient context + sinks
# ----------------------------------------------------------------------
_current: ContextVar[Optional[SpanContext]] = ContextVar(
    "repro_obs_span", default=None
)
_sinks: List[Callable[[Dict], None]] = []
_sink_lock = threading.Lock()
# lazy env-bootstrapped file sink (worker processes): path -> file
_env_sink_fh = None
_env_sink_path: Optional[str] = None


def add_sink(sink: Callable[[Dict], None]) -> None:
    """Install a span sink (idempotent)."""
    with _sink_lock:
        if sink not in _sinks:
            _sinks.append(sink)


def remove_sink(sink: Callable[[Dict], None]) -> None:
    with _sink_lock:
        try:
            _sinks.remove(sink)
        except ValueError:
            pass


def tracing_active() -> bool:
    """Whether emitted spans go anywhere (sink installed, or a span-log
    path is advertised in the environment for this worker to append
    to)."""
    return bool(_sinks) or bool(os.environ.get(SPANLOG_ENV))


def current_context() -> Optional[SpanContext]:
    """The ambient span context: contextvar first, then the
    ``REPRO_TRACEPARENT`` carrier (worker-process bootstrap).

    The env carrier only applies in processes *other* than the one
    that exported it, so sibling threads of an in-process engine run
    don't misattribute their spans to the running execution.
    """
    ctx = _current.get()
    if ctx is not None:
        return ctx
    if os.environ.get(TRACEPARENT_PID_ENV) == str(os.getpid()):
        return None
    return parse_traceparent(os.environ.get(TRACEPARENT_ENV))


@contextmanager
def use_context(ctx: Optional[SpanContext]):
    """Make ``ctx`` the ambient context for the body's duration."""
    token = _current.set(ctx)
    try:
        yield ctx
    finally:
        _current.reset(token)


def _env_sink(record: Dict) -> None:
    """Append to the ``REPRO_SPANLOG`` file (one JSON line per span).

    Used by engine worker processes that were spawned (not forked) and
    therefore did not inherit the service's in-memory sink.  The
    handle is cached per path; line appends on an ``O_APPEND`` stream
    are effectively atomic at these sizes, so concurrent workers can
    share the file.
    """
    global _env_sink_fh, _env_sink_path
    import json

    path = os.environ.get(SPANLOG_ENV)
    if not path:
        return
    try:
        if _env_sink_fh is None or _env_sink_path != path:
            if _env_sink_fh is not None:
                try:
                    _env_sink_fh.close()
                except OSError:
                    pass
            _env_sink_fh = open(path, "a")
            _env_sink_path = path
        _env_sink_fh.write(json.dumps(record) + "\n")
        _env_sink_fh.flush()
    except OSError:
        pass


def emit(record: Dict) -> None:
    """Deliver one finished span to the installed sinks.

    Sinks must never raise into instrumented code paths; a failing
    sink is dropped for the record (not uninstalled — a transient
    disk-full should not silently disable tracing forever).
    """
    sinks = list(_sinks)
    if not sinks:
        if os.environ.get(SPANLOG_ENV):
            _env_sink(record)
        return
    for sink in sinks:
        try:
            sink(record)
        except Exception:  # noqa: BLE001 — telemetry must not break work
            pass


# ----------------------------------------------------------------------
# spans
# ----------------------------------------------------------------------
class Span:
    """One timed stage of a trace.

    Usually managed by :func:`span`; the service also drives a few
    spans manually across threads (queue wait starts in the HTTP
    handler and ends in the executor), which is what the explicit
    :meth:`end` is for.  ``links`` name other span ids this span
    continues (a resumed execution links its pre-crash incarnation).
    """

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "start",
        "attrs",
        "links",
        "status",
        "error",
        "_ended",
    )

    def __init__(
        self,
        name: str,
        *,
        context: Optional[SpanContext] = None,
        parent: Optional[SpanContext] = None,
        links: Optional[List[str]] = None,
        **attrs,
    ) -> None:
        parent = parent if parent is not None else current_context()
        self.name = name
        if context is not None:
            self.trace_id = context.trace_id
            self.span_id = context.span_id
        else:
            self.trace_id = parent.trace_id if parent else new_id(16)
            self.span_id = new_id(8)
        self.parent_id = parent.span_id if parent else None
        self.start = time.time()
        self.attrs = dict(attrs)
        self.links = list(links or ())
        self.status = "ok"
        self.error = None
        self._ended = False

    @property
    def context(self) -> SpanContext:
        return SpanContext(trace_id=self.trace_id, span_id=self.span_id)

    def set(self, **attrs) -> "Span":
        self.attrs.update(attrs)
        return self

    def add_link(self, span_id: Optional[str]) -> "Span":
        if span_id:
            self.links.append(span_id)
        return self

    def end(
        self, status: Optional[str] = None, error: Optional[str] = None
    ) -> None:
        """Close the span and emit it; idempotent (crash-retry paths
        may race a watchdog onto the same span)."""
        if self._ended:
            return
        self._ended = True
        if status is not None:
            self.status = status
        if error is not None:
            self.error = error
            if status is None:
                self.status = "error"
        record = {
            "schema": "repro.span/v1",
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": round(self.start, 6),
            "end": round(time.time(), 6),
            "status": self.status,
        }
        if self.error:
            record["error"] = self.error
        if self.attrs:
            record["attrs"] = self.attrs
        if self.links:
            record["links"] = self.links
        emit(record)


class _NoopSpan:
    """Shared do-nothing span for the tracing-disabled fast path."""

    __slots__ = ()
    trace_id = ""
    span_id = ""
    context = None

    def set(self, **attrs) -> "_NoopSpan":
        return self

    def add_link(self, span_id) -> "_NoopSpan":
        return self

    def end(self, status=None, error=None) -> None:
        pass


NOOP_SPAN = _NoopSpan()


def start_span(
    name: str, *, parent: Optional[SpanContext] = None, **attrs
):
    """A live span (or the no-op when tracing is off) to end manually."""
    if not tracing_active() and _current.get() is None:
        return NOOP_SPAN
    return Span(name, parent=parent, **attrs)


@contextmanager
def span(name: str, *, parent: Optional[SpanContext] = None, **attrs):
    """Time the body as a child span of the ambient (or given) context.

    The new span becomes the ambient context inside the body, so
    nested ``span()`` calls build the tree without any plumbing.  An
    exception marks the span ``error`` (with the exception repr) and
    propagates — spans always close, which is what keeps traces
    complete across the service's crash-retry-resume paths.
    """
    if not tracing_active() and _current.get() is None and parent is None:
        yield NOOP_SPAN
        return
    sp = Span(name, parent=parent, **attrs)
    token = _current.set(sp.context)
    try:
        yield sp
    except BaseException as exc:
        sp.end(status="error", error=f"{type(exc).__name__}: {exc}")
        raise
    finally:
        _current.reset(token)
        sp.end()
