"""Span sink: bounded in-memory trace index + NDJSON file log.

The service installs one :class:`SpanLog` as the process-wide span
sink.  Finished spans (``repro.span/v1`` dicts, see
:mod:`repro.obs.trace`) are kept two ways:

* **in memory** — a bounded deque plus a per-``trace_id`` index, so
  ``GET /api/jobs/<id>/trace`` answers without touching disk (and
  works for servers running without a ``--state-dir``);
* **on disk** — appended line by line to ``<state-dir>/spans.ndjson``
  when a path is configured, surviving restarts and collecting spans
  that engine *worker processes* append directly (they inherit the
  path through ``REPRO_SPANLOG``).

:meth:`SpanLog.for_trace` merges both views, deduplicating on
``span_id`` (a span is only ever emitted once, but the file may hold
what memory already has).  File reads go through the same tolerant
NDJSON parsing the journal uses — a crash mid-append costs one span,
never the trace.
"""

from __future__ import annotations

import json
import os
import threading
from collections import OrderedDict, deque
from pathlib import Path
from typing import Dict, List, Optional, Union

from . import trace

__all__ = ["SPAN_SCHEMA", "SpanLog"]

SPAN_SCHEMA = "repro.span/v1"

#: default bound on spans kept in memory (FIFO eviction, whole-trace
#: index entries dropped as their spans age out).
DEFAULT_MAX_SPANS = 20_000


class SpanLog:
    """Thread-safe span store; usable directly as a trace sink."""

    def __init__(
        self,
        path: Union[str, Path, None] = None,
        max_spans: int = DEFAULT_MAX_SPANS,
    ) -> None:
        if max_spans < 1:
            raise ValueError("max_spans must be >= 1")
        self.path = Path(path) if path else None
        self.max_spans = max_spans
        self._lock = threading.Lock()
        self._spans: deque = deque()
        self._by_trace: "OrderedDict[str, List[Dict]]" = OrderedDict()
        #: spans recorded since construction (monotonic counter).
        self.recorded = 0
        self._fh = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a")

    # -- sink surface --------------------------------------------------
    def __call__(self, record: Dict) -> None:
        self.record(record)

    def record(self, record: Dict) -> None:
        with self._lock:
            self.recorded += 1
            self._spans.append(record)
            trace_id = record.get("trace_id")
            if trace_id:
                self._by_trace.setdefault(trace_id, []).append(record)
            while len(self._spans) > self.max_spans:
                old = self._spans.popleft()
                bucket = self._by_trace.get(old.get("trace_id"))
                if bucket is not None:
                    try:
                        bucket.remove(old)
                    except ValueError:
                        pass
                    if not bucket:
                        self._by_trace.pop(old.get("trace_id"), None)
            if self._fh is not None:
                try:
                    self._fh.write(json.dumps(record) + "\n")
                    self._fh.flush()
                except OSError:
                    pass

    # -- lifecycle -----------------------------------------------------
    def install(self) -> "SpanLog":
        """Register as a global sink; advertise the file path to worker
        processes via ``REPRO_SPANLOG``."""
        trace.add_sink(self)
        if self.path is not None:
            os.environ[trace.SPANLOG_ENV] = str(self.path)
        return self

    def uninstall(self) -> None:
        trace.remove_sink(self)
        if self.path is not None and (
            os.environ.get(trace.SPANLOG_ENV) == str(self.path)
        ):
            os.environ.pop(trace.SPANLOG_ENV, None)

    def close(self) -> None:
        self.uninstall()
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                pass
            self._fh = None

    # -- queries -------------------------------------------------------
    def traces(self) -> List[str]:
        with self._lock:
            return list(self._by_trace)

    def for_trace(self, trace_id: str) -> List[Dict]:
        """Every known span of ``trace_id``, file and memory merged
        (deduplicated on ``span_id``), in start order."""
        with self._lock:
            merged: "OrderedDict[str, Dict]" = OrderedDict()
            for record in self._read_file():
                if record.get("trace_id") == trace_id:
                    merged[record.get("span_id", "")] = record
            for record in self._by_trace.get(trace_id, ()):
                merged[record.get("span_id", "")] = record
        spans = list(merged.values())
        spans.sort(key=lambda s: (s.get("start", 0.0), s.get("end", 0.0)))
        return spans

    def _read_file(self) -> List[Dict]:
        if self.path is None:
            return []
        try:
            raw = self.path.read_bytes()
        except OSError:
            return []
        out: List[Dict] = []
        for line in raw.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                out.append(json.loads(line))
            except ValueError:
                continue  # torn append; skip, keep reading
        return out
