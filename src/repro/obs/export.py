"""Exporters for the metrics registry and the span log.

* :func:`to_prometheus` — Prometheus text exposition format 0.0.4
  (``# HELP`` / ``# TYPE`` headers, ``_bucket{le=...}`` / ``_sum`` /
  ``_count`` histogram series), what ``GET /api/metrics`` serves by
  default;
* :func:`to_json` — the same snapshot as a JSON document
  (``repro.metrics/v1``) for programmatic consumers;
* :func:`parse_prometheus` — a small parser for the text format, used
  by CI to assert parseability and counter monotonicity between two
  scrapes without third-party clients;
* :func:`render_waterfall` — ASCII span waterfall for the
  ``repro-dragonfly trace <job-id>`` CLI verb.
"""

from __future__ import annotations

import json
import math
from typing import Dict, List, Optional

from .registry import REGISTRY, MetricsRegistry

__all__ = [
    "parse_prometheus",
    "render_waterfall",
    "to_json",
    "to_prometheus",
]

METRICS_SCHEMA = "repro.metrics/v1"


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _labels_text(labels: Dict[str, str], extra: str = "") -> str:
    parts = [
        f'{k}="{_escape_label(str(v))}"' for k, v in sorted(labels.items())
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def to_prometheus(registry: Optional[MetricsRegistry] = None) -> str:
    """The registry snapshot in Prometheus text exposition format."""
    registry = registry if registry is not None else REGISTRY
    lines: List[str] = []
    for metric in registry.collect():
        name = metric["name"]
        if metric["help"]:
            lines.append(f"# HELP {name} {_escape_help(metric['help'])}")
        lines.append(f"# TYPE {name} {metric['type']}")
        for sample in metric["samples"]:
            labels = sample["labels"]
            if metric["type"] == "histogram":
                for bucket in sample["buckets"]:
                    le = (
                        "+Inf"
                        if bucket["le"] == "+Inf"
                        else _format_value(float(bucket["le"]))
                    )
                    le_label = 'le="%s"' % le
                    lines.append(
                        f"{name}_bucket"
                        f"{_labels_text(labels, le_label)}"
                        f" {bucket['count']}"
                    )
                lines.append(
                    f"{name}_sum{_labels_text(labels)}"
                    f" {_format_value(sample['sum'])}"
                )
                lines.append(
                    f"{name}_count{_labels_text(labels)} {sample['count']}"
                )
            else:
                lines.append(
                    f"{name}{_labels_text(labels)}"
                    f" {_format_value(sample['value'])}"
                )
    return "\n".join(lines) + "\n"


def to_json(registry: Optional[MetricsRegistry] = None) -> str:
    """The registry snapshot as a ``repro.metrics/v1`` JSON document."""
    registry = registry if registry is not None else REGISTRY
    return json.dumps(
        {"schema": METRICS_SCHEMA, "metrics": registry.collect()},
        sort_keys=True,
    )


# ----------------------------------------------------------------------
# text-format parsing (CI assertions)
# ----------------------------------------------------------------------
def _parse_labels(text: str) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    i = 0
    while i < len(text):
        eq = text.index("=", i)
        key = text[i:eq].strip().lstrip(",").strip()
        if text[eq + 1] != '"':
            raise ValueError(f"unquoted label value in {text!r}")
        j = eq + 2
        out = []
        while j < len(text):
            ch = text[j]
            if ch == "\\":
                nxt = text[j + 1]
                out.append(
                    {"\\": "\\", '"': '"', "n": "\n"}.get(nxt, "\\" + nxt)
                )
                j += 2
                continue
            if ch == '"':
                break
            out.append(ch)
            j += 1
        else:
            raise ValueError(f"unterminated label value in {text!r}")
        labels[key] = "".join(out)
        i = j + 1
    return labels


def parse_prometheus(text: str) -> Dict[str, Dict[str, float]]:
    """Parse Prometheus text format into
    ``{series_name: {sorted-label-json: value}}``.

    Strict enough to catch malformed output (that is its job in CI):
    raises ``ValueError`` on lines that are neither comments, blanks,
    nor well-formed samples.  Histogram child series appear under
    their literal names (``x_bucket``, ``x_sum``, ``x_count``).
    """
    out: Dict[str, Dict[str, float]] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if "{" in line:
            name, rest = line.split("{", 1)
            labeltext, valuetext = rest.rsplit("}", 1)
            labels = _parse_labels(labeltext)
        else:
            name, valuetext = line.split(None, 1)
            labels = {}
        name = name.strip()
        if not name or not name.replace("_", "a").isalnum():
            raise ValueError(f"bad metric name in line {raw!r}")
        value = float(valuetext.split()[0])  # raises on malformed
        key = json.dumps(labels, sort_keys=True)
        out.setdefault(name, {})[key] = value
    return out


# ----------------------------------------------------------------------
# span waterfall (trace CLI)
# ----------------------------------------------------------------------
def _fmt_ms(seconds: float) -> str:
    if seconds >= 10:
        return f"{seconds:8.2f}s"
    return f"{seconds * 1000.0:7.1f}ms"


def render_waterfall(spans: List[Dict], width: int = 48) -> str:
    """ASCII waterfall for one trace's spans (``repro.span/v1`` dicts).

    Rows are depth-indented by parentage, bars are positioned on a
    shared time axis, and error spans are flagged.  Orphan spans
    (parent evicted or from another process) render at depth 0.
    """
    if not spans:
        return "(no spans)"
    spans = sorted(
        spans, key=lambda s: (s.get("start", 0.0), s.get("end", 0.0))
    )
    t0 = min(s.get("start", 0.0) for s in spans)
    t1 = max(s.get("end", s.get("start", 0.0)) for s in spans)
    total = max(t1 - t0, 1e-9)

    by_id = {s.get("span_id"): s for s in spans}

    def depth(s: Dict) -> int:
        d = 0
        seen = set()
        cur = s
        while True:
            pid = cur.get("parent_id")
            if not pid or pid in seen or pid not in by_id:
                return d
            seen.add(pid)
            cur = by_id[pid]
            d += 1

    name_width = max(
        len("  " * depth(s) + s.get("name", "?")) for s in spans
    )
    name_width = min(max(name_width, 12), 44)

    header = (
        f"trace {spans[0].get('trace_id', '?')}  "
        f"({len(spans)} spans, {_fmt_ms(total).strip()} total)"
    )
    lines = [header]
    for s in spans:
        start = s.get("start", t0)
        end = s.get("end", start)
        lo = int((start - t0) / total * width)
        hi = int((end - t0) / total * width)
        lo = min(max(lo, 0), width - 1)
        hi = min(max(hi, lo + 1), width)
        bar = " " * lo + "█" * (hi - lo) + " " * (width - hi)
        label = "  " * depth(s) + s.get("name", "?")
        flag = ""
        if s.get("status") == "error":
            flag = f"  !! {s.get('error', 'error')}"
        if s.get("links"):
            flag += f"  ~> links {','.join(s['links'])}"
        lines.append(
            f"{label:<{name_width}.{name_width}} "
            f"|{bar}| {_fmt_ms(end - start)}{flag}"
        )
    return "\n".join(lines)
