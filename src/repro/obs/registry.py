"""Process-wide metrics registry: labelled counters, gauges, histograms.

A deliberately small, stdlib-only, thread-safe take on the Prometheus
client model:

* :class:`Counter` — monotonically increasing; ``inc()`` with label
  keyword arguments;
* :class:`Gauge` — ``set()``/``inc()``/``dec()``, or
  :meth:`~Gauge.set_function` to sample a callable at collect time
  (queue depth, jobs by state — values someone else already owns);
* :class:`Histogram` — fixed buckets, cumulative counts, ``sum`` and
  ``count``, Prometheus-compatible ``le`` labels.

Metrics are created through a :class:`MetricsRegistry` and identified
by name; re-requesting a name returns the existing metric (so module
A and module B can both say ``REGISTRY.counter("x_total", ...)``
without coordination), while re-requesting with a different type or
label set raises.  :data:`REGISTRY` is the process default that every
runtime component instruments into; tests can build private
registries.

Exporters live in :mod:`repro.obs.export`.
"""

from __future__ import annotations

import math
import threading
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
]

#: default histogram buckets (seconds-flavoured, like Prometheus').
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

_RESERVED = ("le",)


def _label_key(
    labelnames: Tuple[str, ...], labels: Dict[str, object], name: str
) -> Tuple[str, ...]:
    if set(labels) != set(labelnames):
        raise ValueError(
            f"metric {name!r} takes labels {sorted(labelnames)}, "
            f"got {sorted(labels)}"
        )
    return tuple(str(labels[k]) for k in labelnames)


class _Metric:
    """Shared bookkeeping: name, help text, label names, one lock."""

    kind = "untyped"

    def __init__(
        self, name: str, help: str, labelnames: Sequence[str] = ()
    ) -> None:
        if not name or not name.replace("_", "a").isalnum():
            raise ValueError(f"invalid metric name {name!r}")
        for label in labelnames:
            if label in _RESERVED:
                raise ValueError(f"label name {label!r} is reserved")
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()

    def _key(self, labels: Dict[str, object]) -> Tuple[str, ...]:
        return _label_key(self.labelnames, labels, self.name)


class Counter(_Metric):
    """Monotonic counter; one series per label combination."""

    kind = "counter"

    def __init__(self, name, help, labelnames=()):
        super().__init__(name, help, labelnames)
        self._values: Dict[Tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        with self._lock:
            return self._values.get(self._key(labels), 0.0)

    def collect(self) -> List[Dict]:
        with self._lock:
            items = sorted(self._values.items())
        return [
            {"labels": dict(zip(self.labelnames, key)), "value": value}
            for key, value in items
        ]


class Gauge(_Metric):
    """A value that goes up and down; optionally sampled via callback."""

    kind = "gauge"

    def __init__(self, name, help, labelnames=()):
        super().__init__(name, help, labelnames)
        self._values: Dict[Tuple[str, ...], float] = {}
        self._functions: Dict[Tuple[str, ...], Callable[[], float]] = {}

    def set(self, value: float, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)

    def set_function(self, fn: Callable[[], float], **labels) -> None:
        """Sample ``fn()`` at collect time for this label set (replaces
        any previous function or stored value)."""
        key = self._key(labels)
        with self._lock:
            self._functions[key] = fn
            self._values.pop(key, None)

    def value(self, **labels) -> float:
        key = self._key(labels)
        with self._lock:
            fn = self._functions.get(key)
            if fn is None:
                return self._values.get(key, 0.0)
        try:
            return float(fn())
        except Exception:  # noqa: BLE001 — a dead callback reads 0
            return 0.0

    def collect(self) -> List[Dict]:
        with self._lock:
            keys = sorted(set(self._values) | set(self._functions))
        return [
            {
                "labels": dict(zip(self.labelnames, key)),
                "value": self.value(**dict(zip(self.labelnames, key))),
            }
            for key in keys
        ]


class Histogram(_Metric):
    """Cumulative-bucket histogram (Prometheus semantics)."""

    kind = "histogram"

    def __init__(
        self,
        name,
        help,
        labelnames=(),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, help, labelnames)
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise ValueError("a histogram needs at least one bucket")
        if bounds and bounds[-1] == math.inf:
            bounds = bounds[:-1]
        self.buckets = tuple(bounds)
        self._counts: Dict[Tuple[str, ...], List[int]] = {}
        self._sums: Dict[Tuple[str, ...], float] = {}
        self._totals: Dict[Tuple[str, ...], int] = {}

    def observe(self, value: float, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            counts = self._counts.get(key)
            if counts is None:
                counts = self._counts[key] = [0] * (len(self.buckets) + 1)
                self._sums[key] = 0.0
                self._totals[key] = 0
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[i] += 1
                    break
            else:
                counts[-1] += 1  # +Inf bucket
            self._sums[key] += value
            self._totals[key] += 1

    def count(self, **labels) -> int:
        with self._lock:
            return self._totals.get(self._key(labels), 0)

    def sum(self, **labels) -> float:
        with self._lock:
            return self._sums.get(self._key(labels), 0.0)

    def collect(self) -> List[Dict]:
        with self._lock:
            items = sorted(self._counts.items())
            sums = dict(self._sums)
            totals = dict(self._totals)
        out = []
        for key, counts in items:
            cumulative = []
            running = 0
            for count in counts:
                running += count
                cumulative.append(running)
            out.append(
                {
                    "labels": dict(zip(self.labelnames, key)),
                    "buckets": [
                        {"le": bound, "count": cum}
                        for bound, cum in zip(self.buckets, cumulative)
                    ]
                    + [{"le": "+Inf", "count": cumulative[-1]}],
                    "sum": sums[key],
                    "count": totals[key],
                }
            )
        return out


class MetricsRegistry:
    """Named metric store with idempotent get-or-create semantics."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: "Dict[str, _Metric]" = {}

    def _get_or_create(self, cls, name, help, labelnames, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or (
                    existing.labelnames != tuple(labelnames)
                ):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind} with labels "
                        f"{list(existing.labelnames)}"
                    )
                return existing
            metric = cls(name, help, labelnames, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labelnames, buckets=buckets
        )

    def get(self, name: str) -> Optional[_Metric]:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def collect(self) -> List[Dict]:
        """Snapshot every metric (sorted by name) for the exporters."""
        with self._lock:
            metrics = [self._metrics[n] for n in sorted(self._metrics)]
        return [
            {
                "name": m.name,
                "type": m.kind,
                "help": m.help,
                "samples": m.collect(),
            }
            for m in metrics
        ]

    def unregister(self, name: str) -> None:
        with self._lock:
            self._metrics.pop(name, None)


#: the process-default registry every runtime component instruments.
REGISTRY = MetricsRegistry()
