"""Hop-cost and diameter models of Sec. III-B3 (Table II, Equation 7)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..core.config import SwitchlessConfig

__all__ = ["HopCost", "TABLE_II", "switchless_diameter", "DiameterModel"]


@dataclass(frozen=True)
class HopCost:
    """Latency/energy of one hop class (Table II)."""

    name: str
    medium: str
    latency_ns: float
    energy_pj_per_bit: float


#: Table II: comparison of hop cost.  ``Hg``/``Hl`` latency excludes
#: time-of-flight, exactly as the paper's "150 + ToF" entries.
TABLE_II: Dict[str, HopCost] = {
    "Hg": HopCost("Hg", "Optical Cable", 150.0, 20.0),
    "Hl": HopCost("Hl", "Copper Cable", 150.0, 20.0),
    "Hsr": HopCost("Hsr", "RDL", 5.0, 2.0),
    "Hon-chip": HopCost("Hon-chip", "Metal Layer", 1.0, 0.1),
}


@dataclass(frozen=True)
class DiameterModel:
    """Hop-count decomposition of a worst-case route."""

    global_hops: int
    local_hops: int
    terminal_hops: int
    sr_hops: int
    onchip_hops: int = 0

    def latency_ns(self, costs: Dict[str, HopCost] = TABLE_II) -> float:
        return (
            self.global_hops * costs["Hg"].latency_ns
            + (self.local_hops + self.terminal_hops) * costs["Hl"].latency_ns
            + self.sr_hops * costs["Hsr"].latency_ns
            + self.onchip_hops * costs["Hon-chip"].latency_ns
        )

    def energy_pj(self, costs: Dict[str, HopCost] = TABLE_II) -> float:
        return (
            self.global_hops * costs["Hg"].energy_pj_per_bit
            + (self.local_hops + self.terminal_hops)
            * costs["Hl"].energy_pj_per_bit
            + self.sr_hops * costs["Hsr"].energy_pj_per_bit
            + self.onchip_hops * costs["Hon-chip"].energy_pj_per_bit
        )

    def describe(self) -> str:
        parts = []
        if self.global_hops:
            parts.append(f"{self.global_hops}Hg")
        if self.local_hops:
            parts.append(f"{self.local_hops}Hl")
        if self.terminal_hops:
            parts.append(f"{self.terminal_hops}Hl*")
        if self.sr_hops:
            parts.append(f"{self.sr_hops}Hsr")
        if self.onchip_hops:
            parts.append(f"{self.onchip_hops}Hoc")
        return " + ".join(parts) if parts else "0"


def switchless_diameter(cfg: SwitchlessConfig) -> DiameterModel:
    """Equation (7): D = Hg + 2*Hl + (8m - 2)*Hsr.

    A worst-case minimal route visits four C-groups (source, two
    intermediates, destination); each 2D-mesh C-group contributes up to
    ``2(m-1)`` chiplet hops, and every one of the three inter-C-group
    hops costs two extra SR-LR conversion hops: ``4 * 2(m-1) + 3 * 2 =
    8m - 2`` short-reach hops in total.

    For single-W-group systems (Sec. III-D1) the diameter is
    ``Hl + (4m - 2) Hsr``.
    """
    m = cfg.paper_m
    if cfg.num_wgroups_effective == 1:
        return DiameterModel(
            global_hops=0, local_hops=1, terminal_hops=0,
            sr_hops=4 * m - 2,
        )
    return DiameterModel(
        global_hops=1, local_hops=2, terminal_hops=0,
        sr_hops=8 * m - 2,
    )
