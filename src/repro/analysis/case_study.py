"""Table III: comparison of key specifications across topologies.

Every row is *recomputed* from the underlying structural arithmetic
(switch counts, packaging densities, throughput bounds and diameter
decompositions), and carries the paper's published value for comparison;
the Table III bench prints both.  Deviations are annotated — see the
cable-length note in :mod:`repro.analysis.cost`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..core.config import SwitchlessConfig
from ..topology.dragonfly import DragonflyConfig
from .cost import (
    CABINET_NODES,
    CostSummary,
    dragonfly_cost,
    fattree_cost,
    switchless_cost,
)
from .throughput import (
    global_throughput_bound,
    intra_cgroup_throughput_bound,
    local_throughput_bound,
)

__all__ = ["TableIIIRow", "build_table_iii", "format_table_iii", "slingshot_config"]


@dataclass
class TableIIIRow:
    """One computed row of Table III with the paper's reference values."""

    name: str
    chip_radix: int
    switch_radix: Optional[int]
    num_switches: int
    num_cabinets: int
    num_processors: int
    cable_count_k: float
    cable_length_coeff_k: Optional[float]
    t_local: float
    t_global: float
    diameter: str
    #: (switches, cabinets, processors, cables K) as printed in the paper.
    paper: Optional[tuple] = None
    notes: str = ""

    def format(self) -> str:
        sw = f"{self.switch_radix}" if self.switch_radix else "-"
        length = (
            f"/{self.cable_length_coeff_k:.0f}K*E"
            if self.cable_length_coeff_k is not None
            else ""
        )
        return (
            f"{self.name:30s} {self.chip_radix:3d} {sw:>4s} "
            f"{self.num_switches:7d} {self.num_cabinets:6d} "
            f"{self.num_processors:8d} {self.cable_count_k:5.0f}K{length:10s} "
            f"{self.t_local:5.2f} {self.t_global:5.2f}  {self.diameter}"
        )


def slingshot_config() -> DragonflyConfig:
    """The maximum Slingshot Dragonfly of Fig. 2: radix-64 switches split
    16 terminals : 31 local : 17 global, 545 groups, 279040 nodes."""
    return DragonflyConfig(p=16, a=32, h=17)


def build_table_iii() -> List[TableIIIRow]:
    rows: List[TableIIIRow] = []

    # -- 2D-Mesh & Switch (DOJO) ---------------------------------------
    # 450 processors (25 D1 dies x 18 training tiles per ExaPOD row
    # modeled as a 15x30 mesh of radix-8 chips), one central edge switch.
    mesh_r, mesh_c = 15, 30
    n_dojo = mesh_r * mesh_c
    # radix-8 chips give 2 parallel links per mesh edge; the paper's
    # uniform-traffic cut crosses the 30-position dimension:
    # B = 30 positions x 2 links x 2 (duplex), T = 2B/N = 0.53
    bisection = mesh_c * 2 * 2
    rows.append(TableIIIRow(
        name="2D-Mesh & Switch (DOJO)",
        chip_radix=8,
        switch_radix=60,
        num_switches=1,
        num_cabinets=2,
        num_processors=n_dojo,
        cable_count_k=0.45,
        cable_length_coeff_k=None,
        t_local=1.6,
        t_global=round(2 * bisection / n_dojo, 2),
        diameter="2Hl* + 18Hsr",
        paper=(1, 2, 450, None),
        notes="mesh-edge links to one central switch",
    ))

    # -- Fat-Trees ------------------------------------------------------
    ft1 = fattree_cost(num_processors=65536, planes=1)
    rows.append(TableIIIRow(
        name="Three-Stage Fat-Tree",
        chip_radix=1, switch_radix=64,
        num_switches=ft1.num_switches, num_cabinets=ft1.num_cabinets,
        num_processors=ft1.num_processors,
        cable_count_k=ft1.cable_count / 1e3,
        cable_length_coeff_k=None,
        t_local=1.0, t_global=1.0,
        diameter="2Hg + 2Hl + 2Hl*",
        paper=(5120, 608, 65536, 197),
    ))
    ft4 = fattree_cost(num_processors=65536, planes=4)
    rows.append(TableIIIRow(
        name="Three-Stage Fat-Tree x4",
        chip_radix=4, switch_radix=64,
        num_switches=ft4.num_switches, num_cabinets=ft4.num_cabinets,
        num_processors=ft4.num_processors,
        cable_count_k=ft4.cable_count / 1e3,
        cable_length_coeff_k=None,
        t_local=4.0, t_global=4.0,
        diameter="2Hg + 2Hl + 2Hl*",
        paper=(20480, 896, 65536, 786),
    ))
    ftt = fattree_cost(num_processors=98304, planes=4, taper=3)
    rows.append(TableIIIRow(
        name="Three-Stage F-T (3:1 Taper)",
        chip_radix=4, switch_radix=64,
        num_switches=ftt.num_switches, num_cabinets=ftt.num_cabinets,
        num_processors=ftt.num_processors,
        cable_count_k=ftt.cable_count / 1e3,
        cable_length_coeff_k=None,
        t_local=4.0, t_global=4.0 / 3.0,
        diameter="2Hg + 2Hl + 2Hl*",
        paper=(14336, 960, 98304, 655),
    ))

    # -- HammingMesh ------------------------------------------------------
    # Hx4Mesh over 65536 chips: 64x64 boards of 4x4; every chip row and
    # column (256 each) gets a 2:1-tapered two-level 64-port fat tree
    # (8 leaves + 2 spines = 10 switches per tree) [8].
    trees = 256 + 256
    sw_per_tree = 10
    hx_switches = trees * sw_per_tree
    hx_cabinets = 65536 // (2 * CABINET_NODES) + hx_switches // 32
    rows.append(TableIIIRow(
        name="1-Plane Hx4Mesh",
        chip_radix=4, switch_radix=64,
        num_switches=hx_switches,
        num_cabinets=hx_cabinets,
        num_processors=65536,
        cable_count_k=(65536 + hx_switches * 32) / 1e3,
        cable_length_coeff_k=None,
        t_local=2.0, t_global=0.5,
        diameter="2Hg + 2Hl + 2Hl* + 4Hsr",
        paper=(5120, 352, 65536, 197),
        notes="boards double cabinet density",
    ))
    rows.append(TableIIIRow(
        name="4-Plane Hx4Mesh",
        chip_radix=16, switch_radix=64,
        num_switches=hx_switches * 4,
        num_cabinets=65536 // (2 * CABINET_NODES) + hx_switches * 4 // 32,
        num_processors=65536,
        cable_count_k=(65536 + hx_switches * 32) * 4 / 1e3,
        cable_length_coeff_k=None,
        t_local=8.0, t_global=2.0,
        diameter="2Hg + 2Hl + 2Hl* + 4Hsr",
        paper=(20480, 640, 65536, 786),
    ))

    # -- Co-packaged PolarFly --------------------------------------------
    # ER(63): 4033 radix-64 routers, 32 processors co-packaged per router,
    # 8 co-packages per cabinet.
    pf_routers = 63 * 63 + 63 + 1
    rows.append(TableIIIRow(
        name="Co-Packaged PolarFly (p=32)",
        chip_radix=1, switch_radix=64,
        num_switches=pf_routers,
        num_cabinets=-(-pf_routers // 8),
        num_processors=pf_routers * 32,
        cable_count_k=pf_routers * 64 / 2 / 1e3,
        cable_length_coeff_k=None,
        t_local=1.0, t_global=1.0,
        diameter="2Hg + 2Hsr",
        paper=(4033, 504, 129056, 129),
    ))

    # -- Slingshot Dragonfly ----------------------------------------------
    ss = dragonfly_cost(slingshot_config())
    rows.append(TableIIIRow(
        name="Dragonfly (Slingshot)",
        chip_radix=1, switch_radix=64,
        num_switches=ss.num_switches, num_cabinets=ss.num_cabinets,
        num_processors=ss.num_processors,
        cable_count_k=ss.cable_count / 1e3,
        cable_length_coeff_k=ss.cable_length_coeff / 1e3,
        t_local=1.0, t_global=1.0,
        diameter="Hg + 2Hl + 2Hl*",
        paper=(17440, 2180, 279040, 698),
        notes="paper length 154K*E; see cost-model note",
    ))

    # -- Switch-less Dragonfly ---------------------------------------------
    cs = SwitchlessConfig.case_study()
    sl = switchless_cost(cs)
    rows.append(TableIIIRow(
        name="Switch-less Dragonfly",
        chip_radix=12, switch_radix=None,
        num_switches=0, num_cabinets=sl.num_cabinets,
        num_processors=sl.num_processors,
        cable_count_k=sl.cable_count / 1e3,
        cable_length_coeff_k=sl.cable_length_coeff / 1e3,
        t_local=local_throughput_bound(cs),
        t_global=min(1.0, global_throughput_bound(cs)),
        diameter="Hg + 2Hl + 30Hsr",
        paper=(0, 545, 279040, 419),
        notes="paper length 73K*E; Tlocal 2 (3 intra-C-group)",
    ))
    return rows


def format_table_iii() -> str:
    header = (
        f"{'network':30s} {'cR':>3s} {'swR':>4s} {'switch':>7s} "
        f"{'cab':>6s} {'procs':>8s} {'cables':>16s} "
        f"{'Tloc':>5s} {'Tglb':>5s}  diameter"
    )
    lines = ["Table III: key specifications", header]
    for row in build_table_iii():
        lines.append(row.format())
    return "\n".join(lines)
