"""Reference data tables of the paper (Tables I, II and IV).

These are published hardware specifications the paper cites; we keep them
as structured data with derived-value checks (e.g. throughput = lanes x
data-rate) so the reproduction can regenerate the tables and validate the
arithmetic rather than just restate numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..network.params import SimParams
from .latency_model import TABLE_II, HopCost

__all__ = ["ChipSpec", "TABLE_I", "format_table_i", "format_table_ii",
           "format_table_iv"]


@dataclass(frozen=True)
class ChipSpec:
    """One column of Table I."""

    name: str
    category: str
    physical_lanes: int
    data_rate_gbps: float

    @property
    def throughput_tbps(self) -> float:
        """Aggregate external bandwidth = lanes x rate (Tb/s)."""
        return self.physical_lanes * self.data_rate_gbps / 1000.0


#: Table I: external communication and switching capability.
TABLE_I: List[ChipSpec] = [
    ChipSpec("NVSwitch", "Switching Chip", 128, 100.0),
    ChipSpec("Tofino2", "Switching Chip", 256, 50.0),
    ChipSpec("Rosetta", "Switching Chip", 256, 50.0),
    ChipSpec("H100", "Computing Chip", 36, 100.0),
    ChipSpec("EPYC", "Computing Chip", 128, 32.0),
    ChipSpec("DOJO D1", "Computing Chip", 576, 112.0),
]


def format_table_i() -> str:
    lines = [
        "Table I: external communication and switching capability",
        f"{'chip':10s} {'category':15s} {'lanes':>6s} {'Gbps':>6s} {'Tb/s':>6s}",
    ]
    for spec in TABLE_I:
        lines.append(
            f"{spec.name:10s} {spec.category:15s} {spec.physical_lanes:6d} "
            f"{spec.data_rate_gbps:6.0f} {spec.throughput_tbps:6.1f}"
        )
    return "\n".join(lines)


def format_table_ii() -> str:
    lines = [
        "Table II: comparison of hop cost",
        f"{'hop':9s} {'medium':15s} {'latency(ns)':>12s} {'pJ/bit':>7s}",
    ]
    for cost in TABLE_II.values():
        lat = (
            f"{cost.latency_ns:.0f}+ToF"
            if cost.name in ("Hg", "Hl")
            else f"~{cost.latency_ns:.0f}"
        )
        lines.append(
            f"{cost.name:9s} {cost.medium:15s} {lat:>12s} "
            f"{cost.energy_pj_per_bit:7.1f}"
        )
    return "\n".join(lines)


def format_table_iv(params: SimParams = SimParams()) -> str:
    rows = [
        ("Packet Length", f"{params.packet_length} flits"),
        ("Input Buffer Size", f"{params.vc_buffer_size} flits"),
        ("Base Link Bandwidth", "1 flit/cycle"),
        ("Short-Reach Link Delay", "1 cycle"),
        ("Long-Reach Link Delay", "8 cycles"),
        (
            "Simulation Time",
            f"{params.measure_cycles} cycles after "
            f"{params.warmup_cycles} cycles warming up",
        ),
    ]
    width = max(len(k) for k, _ in rows)
    lines = ["Table IV: default parameters"]
    lines += [f"{k:<{width}s}  {v}" for k, v in rows]
    return "\n".join(lines)
