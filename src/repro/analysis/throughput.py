"""Closed-form throughput bounds of Sec. III-B2 (Equations 2-6).

All rates are in the paper's unit, flits/cycle/chip, with every physical
link normalised to 1 flit/cycle.  These bounds are the quantities the
simulation section then probes: the benches compare measured saturation
points against them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.config import SwitchlessConfig

__all__ = [
    "global_throughput_bound",
    "local_throughput_bound",
    "intra_cgroup_throughput_bound",
    "cgroup_bisection_bandwidth",
    "balanced_parameters",
    "is_balanced",
]


def global_throughput_bound(cfg: SwitchlessConfig) -> float:
    """Equation (2): T_global < (m*n - a*b + 1) / m**2 flits/cycle/chip.

    Derived from the bisection of the fully-connected W-group graph:
    (g/2)^2 global channels times 2 (duplex) times 2 (each packet crosses
    the bisection once on average under uniform traffic), divided by N.
    """
    m = cfg.paper_m
    n = cfg.paper_n
    ab = cfg.cgroups_per_wgroup
    return (m * n - ab + 1) / (m * m)


def local_throughput_bound(cfg: SwitchlessConfig) -> float:
    """Equation (4): T_local < a*b / m**2 flits/cycle/chip.

    Saturation injection rate for traffic confined to one W-group,
    limited by the bisection of the fully-connected C-group graph.
    """
    m = cfg.paper_m
    return cfg.cgroups_per_wgroup / (m * m)


def intra_cgroup_throughput_bound(cfg: SwitchlessConfig) -> float:
    """Equation (5): T_cg < n / m flits/cycle/chip.

    Saturation rate for traffic confined to one C-group, limited by the
    2D-mesh bisection (n*m/4 channels, duplex, half the traffic crossing).
    The ``mesh_capacity`` multiplier (2B/4B) scales it directly.
    """
    return cfg.paper_n / cfg.paper_m * cfg.mesh_capacity


def cgroup_bisection_bandwidth(cfg: SwitchlessConfig) -> float:
    """Equation (6): B_cg = n*m/2 = k/2 flits/cycle (full duplex).

    Half of what a k-port non-blocking switch provides — the structural
    reason the paper's Figs. 11-12 need the 2B/4B configurations for
    extreme global traffic.
    """
    return cfg.num_ports / 2 * cfg.mesh_capacity


def balanced_parameters(m: int) -> dict:
    """Equation (3): the balanced configuration n = 3m, a*b = 2m**2.

    Returns the paper-notation parameter set for chiplet-mesh scale
    ``m``; with it the Eq. (2) bound reaches 1 flit/cycle/chip and the
    global:local channel ratio is about 1:2 as in a balanced Dragonfly.
    """
    n = 3 * m
    ab = 2 * m * m
    k = n * m
    h = k - ab + 1
    return {
        "m": m,
        "n": n,
        "ab": ab,
        "k": k,
        "h": h,
        "g": ab * h + 1,
        "N": ab * m * m * (ab * h + 1),
    }


def is_balanced(cfg: SwitchlessConfig, tolerance: float = 0.35) -> bool:
    """Whether the configuration approximates the Eq. (3) balance point."""
    m = cfg.paper_m
    if m == 0:
        return False
    n_ratio = cfg.paper_n / (3 * m)
    ab_ratio = cfg.cgroups_per_wgroup / (2 * m * m)
    return (
        abs(n_ratio - 1.0) <= tolerance and abs(ab_ratio - 1.0) <= tolerance
    )
