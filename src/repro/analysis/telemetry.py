"""Channel-based telemetry analysis.

Where the closed-form modules of this package predict single numbers,
these helpers consume the typed :class:`~repro.metrics.MetricChannel`
payloads that probes attach to simulated points — per-link load maps,
misroute ratios and congestion time series — and condense them into
the curve-level summaries the paper's Fig. 13-style discussion needs.

All functions take results from :meth:`repro.api.Study.run` (or the
individual ``CurveResult``/``PointResult`` objects) whose specs carried
a ``metrics`` axis; they raise :class:`KeyError` with the available
channel names when the requested channel is absent.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

__all__ = [
    "channel_frame",
    "congestion_evolution",
    "hot_links",
    "link_load_summary",
    "misroute_rows",
    "misroute_table",
]


def channel_frame(channel) -> Dict[str, List]:
    """Column-major view of a channel: column name -> value list."""
    return {
        name: channel.column(name) for name in channel.columns
    }


# ----------------------------------------------------------------------
# link utilisation (``link_util`` channel)
# ----------------------------------------------------------------------
def hot_links(channel, n: int = 10) -> List[Tuple]:
    """The ``n`` most-loaded links of a ``link_util`` channel, as
    ``(link, src, dst, flits, flits_per_cycle, share)`` rows."""
    return channel.top("flits", n)


def link_load_summary(point) -> Dict[str, float]:
    """Load-balance statistics of one point's ``link_util`` channel.

    Returns the channel summary extended with a max/mean imbalance
    factor — 1.0 means perfectly balanced link load, large values mean
    a few links carry the traffic (the congestion signature minimal
    routing shows under adversarial patterns).
    """
    ch = point.channel("link_util")
    summary = dict(ch.summary)
    mean = summary.get("mean_flits_per_cycle")
    peak = summary.get("max_flits_per_cycle")
    summary["imbalance"] = (
        peak / mean
        if mean and peak is not None and not math.isnan(mean) and mean > 0
        else float("nan")
    )
    return summary


# ----------------------------------------------------------------------
# misrouting (``misroute`` channel) — the Fig. 13 metric
# ----------------------------------------------------------------------
def misroute_rows(curve) -> List[Tuple[float, float, float]]:
    """``(rate, misroute_ratio, avg_excess_hops)`` per curve point.

    The ratio counts measured delivered packets whose route exceeded
    the BFS-minimal hop distance.  Flat minimal routings sit at 0;
    hierarchical minimal policies carry a constant structural offset
    (see :class:`~repro.metrics.MisrouteProbe`), so compare minimal
    vs Valiant rows of the *same* architecture for the Fig. 13 signal.
    """
    rows = []
    for p in curve.points:
        s = p.channel("misroute").summary
        rows.append((p.rate, s["misroute_ratio"], s["avg_excess"]))
    return rows


def misroute_table(result) -> str:
    """Text table of misroute ratios for every curve of a study result
    (works on :class:`~repro.api.StudyResult` and
    :class:`~repro.api.ScenarioResult`)."""
    scenarios = getattr(result, "scenarios", None) or (result,)
    lines = ["# misrouting (measured delivered packets)",
             "scenario      curve            rate  misroute  avg_excess"]
    for scn in scenarios:
        for curve in scn.curves:
            for rate, ratio, excess in misroute_rows(curve):
                lines.append(
                    f"{scn.name:12s}  {curve.label:15s} {rate:5.2f}  "
                    f"{ratio:8.3f}  {excess:10.3f}"
                )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# congestion evolution (``timeseries`` channel)
# ----------------------------------------------------------------------
def congestion_evolution(point) -> Dict[str, List]:
    """One point's windowed telemetry as column lists.

    Keys: ``t_start``, ``t_end``, ``injected``, ``completed``,
    ``backlog``, ``avg_latency`` — backlog growth across windows is the
    congestion-onset signal (a stable network plateaus, a saturated one
    climbs monotonically).
    """
    return channel_frame(point.channel("timeseries"))
