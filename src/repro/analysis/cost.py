"""Datacenter cost model of Sec. III-C3: switches, cabinets, cables.

Packaging constants follow the paper's cited assumptions:

* a Slingshot cabinet hosts 64 blades x 2 nodes = 128 nodes plus 8
  top-of-rack switches [56];
* Fat-Tree core/aggregation switches pack 32 per cabinet;
* HammingMesh boards (short-reach 2D-mesh-on-PCB) and PolarFly
  co-packages double the per-cabinet chip density (256 chips);
* wafer-scale integration increases density at least 4x: one cabinet
  hosts a full W-group (8 wafers, 512 chips for the Sec. III-C system).

Cable-length model (documented substitution — the paper does not give
its exact estimator): cabinets are laid out on an ``E x E`` floor; a
cable between two unrelated cabinets has expected length ``E/2``;
intra-cabinet cables contribute zero.  The paper reports 154K*E for the
Slingshot and 73K*E for the switch-less Dragonfly; our estimator yields
the same switch-less value (global cables only: 148240/2 ~ 74K) and a
somewhat larger Slingshot value (it also charges the 270K inter-cabinet
local cables at E/2).  The claim under test — "less than half the cable
length" — holds under both estimators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..core.config import SwitchlessConfig
from ..topology.dragonfly import DragonflyConfig

__all__ = [
    "CABINET_NODES",
    "CostSummary",
    "dragonfly_cost",
    "switchless_cost",
    "fattree_cost",
]

#: compute nodes per standard cabinet (64 blades x 2 nodes [56]).
CABINET_NODES = 128
#: ToR switches per standard cabinet.
CABINET_TOR_SWITCHES = 8
#: non-ToR (core/aggregation) switches per cabinet.
CABINET_CORE_SWITCHES = 32
#: wafers per cabinet for wafer-scale systems (conservative 4x density).
CABINET_WAFERS = 8


@dataclass
class CostSummary:
    """Cost metrics of one interconnection network (Table III columns)."""

    name: str
    num_processors: int
    num_switches: int
    num_cabinets: int
    #: total cable count (all long-reach channels, incl. terminal links).
    cable_count: int
    #: coefficient c in the total-cable-length estimate c * E.
    cable_length_coeff: float
    notes: str = ""

    def row(self) -> str:
        return (
            f"{self.name:28s} {self.num_switches:8d} {self.num_cabinets:6d} "
            f"{self.num_processors:9d} {self.cable_count / 1e3:7.0f}K "
            f"{self.cable_length_coeff / 1e3:6.0f}K*E"
        )


def dragonfly_cost(cfg: DragonflyConfig, name: str = "Dragonfly (Slingshot)") -> CostSummary:
    """Switch-based Dragonfly cost (Slingshot row of Table III)."""
    g, a, p, h = cfg.num_groups, cfg.a, cfg.p, cfg.h
    switches = g * a
    processors = switches * p
    cabinets = -(-processors // CABINET_NODES)
    terminal_cables = processors
    local_cables = g * (a * (a - 1) // 2)
    global_cables = switches * h // 2
    cable_count = terminal_cables + local_cables + global_cables
    # terminals stay in-cabinet; locals and globals cross cabinets
    coeff = (local_cables + global_cables) * 0.5
    return CostSummary(
        name=name,
        num_processors=processors,
        num_switches=switches,
        num_cabinets=cabinets,
        cable_count=cable_count,
        cable_length_coeff=coeff,
        notes=f"{CABINET_TOR_SWITCHES} ToR switches per cabinet",
    )


def switchless_cost(
    cfg: SwitchlessConfig, name: str = "Switch-less Dragonfly"
) -> CostSummary:
    """Wafer-based switch-less Dragonfly cost (last row of Table III).

    No switches; one cabinet hosts a full W-group (b wafers).  Local
    channels are intra-cabinet (zero length contribution); only global
    channels cross the floor.
    """
    g = cfg.num_wgroups_effective
    ab = cfg.cgroups_per_wgroup
    processors = cfg.num_chips
    cabinets = g * max(1, cfg.wafers_per_wgroup // CABINET_WAFERS)
    local_cables = g * (ab * (ab - 1) // 2)
    global_cables = g * ab * cfg.num_global // 2
    cable_count = local_cables + global_cables
    coeff = global_cables * 0.5
    return CostSummary(
        name=name,
        num_processors=processors,
        num_switches=0,
        num_cabinets=cabinets,
        cable_count=cable_count,
        cable_length_coeff=coeff,
        notes=f"{CABINET_WAFERS} wafers per cabinet; locals intra-cabinet",
    )


def fattree_cost(
    *,
    radix: int = 64,
    num_processors: int = 65536,
    planes: int = 1,
    taper: int = 1,
    name: Optional[str] = None,
) -> CostSummary:
    """Three-stage folded-Clos cost (Fat-Tree rows of Table III).

    ``taper`` is the edge over-subscription (1 = full bisection, 3 =
    3:1 taper: 3/4 of edge ports face down).  ``planes`` replicates the
    whole fabric (multi-rail injection).
    """
    if name is None:
        tag = f"{planes}-plane" if taper == 1 else f"{taper}:1 taper"
        name = f"Three-Stage Fat-Tree ({tag})"
    half = radix // 2
    down = half if taper == 1 else radix * taper // (taper + 1)
    up = radix - down
    edge = -(-num_processors // down)
    # aggregation fills pods of `half` edge switches; cores connect pods
    agg = edge * up // half
    core = agg // 2
    per_plane = edge + agg + core
    switches = per_plane * planes
    # edge switches are ToR; agg+core pack CABINET_CORE_SWITCHES per cabinet
    node_cabinets = -(-num_processors // CABINET_NODES)
    core_cabinets = -(-(agg + core) * planes // CABINET_CORE_SWITCHES)
    terminal_cables = num_processors * planes
    # only the edge stage is tapered; aggregation keeps `half` up-links
    fabric_cables = (edge * up + agg * half) * planes
    coeff = fabric_cables * 0.5
    return CostSummary(
        name=name,
        num_processors=num_processors,
        num_switches=switches,
        num_cabinets=node_cabinets + core_cabinets,
        cable_count=terminal_cables + fabric_cables,
        cable_length_coeff=coeff,
        notes=f"radix {radix}, {planes} plane(s), {taper}:1 taper",
    )
