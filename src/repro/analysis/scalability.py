"""Scalability model of Sec. III-A/III-B1 (Equation 1) and config search."""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from ..core.config import SwitchlessConfig

__all__ = ["total_chiplets", "verify_equation_1", "search_configurations"]


def total_chiplets(a: int, b: int, m: int, n: int) -> int:
    """Equation (1): N = a*b*m^2 * [a*b*(m*n - a*b + 1) + 1].

    ``a`` C-groups per wafer, ``b`` wafers per W-group, ``m`` chiplets per
    C-group side, ``n`` interfaces per chiplet.
    """
    ab = a * b
    k = m * n
    h = k - ab + 1
    if h < 1:
        raise ValueError(
            f"too few ports: k={k} cannot connect ab={ab} C-groups"
        )
    return ab * m * m * (ab * h + 1)


def verify_equation_1(cfg: SwitchlessConfig) -> Tuple[int, int]:
    """(formula N, built N) for a config at its maximum W-group count.

    The built value counts *chiplet-granularity* chips only when
    ``chiplet_dim`` matches the paper's m/n notation; both numbers are
    returned so tests can assert equality.
    """
    a = cfg.cgroups_per_wafer
    b = cfg.wafers_per_wgroup
    m = cfg.paper_m
    # n may be fractional in node-granular configs; Eq.(1) needs k = n*m
    k = cfg.num_ports
    ab = a * b
    h = k - ab + 1
    formula = ab * m * m * (ab * h + 1)
    built = cfg.num_chips if cfg.num_wgroups is None else (
        cfg.chips_per_cgroup * ab * (ab * h + 1)
    )
    return formula, built


def search_configurations(
    *,
    min_chips: int,
    max_chips: Optional[int] = None,
    m_range: Tuple[int, int] = (1, 8),
    balanced_only: bool = True,
) -> List[dict]:
    """Enumerate balanced configurations reaching at least ``min_chips``.

    Implements the design-space exploration implicit in Sec. III-B1
    ("using a very small configuration (2,4,2,6) the total chiplet number
    can reach 1K").  Returns paper-notation dicts sorted by N.
    """
    out: List[dict] = []
    for m in range(m_range[0], m_range[1] + 1):
        n = 3 * m
        ab = 2 * m * m
        if balanced_only:
            combos = [(n, ab)]
        else:
            combos = [
                (nn, aabb)
                for nn in range(max(2, n - m), n + m + 1)
                for aabb in range(2, n * m)
            ]
        for nn, aabb in combos:
            k = nn * m
            h = k - aabb + 1
            if h < 1:
                continue
            big_n = aabb * m * m * (aabb * h + 1)
            if big_n < min_chips:
                continue
            if max_chips is not None and big_n > max_chips:
                continue
            out.append(
                {"m": m, "n": nn, "ab": aabb, "h": h,
                 "g": aabb * h + 1, "N": big_n}
            )
    out.sort(key=lambda d: d["N"])
    return out
