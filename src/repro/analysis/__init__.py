"""Analytical models: throughput, scalability, latency, cost, energy."""

from .case_study import (
    TableIIIRow,
    build_table_iii,
    format_table_iii,
    slingshot_config,
)
from .cost import (
    CostSummary,
    dragonfly_cost,
    fattree_cost,
    switchless_cost,
)
from .energy import (
    FIG15_ENERGY,
    TABLE_II_ENERGY,
    EnergyBreakdown,
    average_energy,
    path_energy,
)
from .latency_model import (
    TABLE_II,
    DiameterModel,
    HopCost,
    switchless_diameter,
)
from .scalability import (
    search_configurations,
    total_chiplets,
    verify_equation_1,
)
from .telemetry import (
    channel_frame,
    congestion_evolution,
    hot_links,
    link_load_summary,
    misroute_rows,
    misroute_table,
)
from .tables import (
    TABLE_I,
    ChipSpec,
    format_table_i,
    format_table_ii,
    format_table_iv,
)
from .throughput import (
    balanced_parameters,
    cgroup_bisection_bandwidth,
    global_throughput_bound,
    intra_cgroup_throughput_bound,
    is_balanced,
    local_throughput_bound,
)

__all__ = [
    "TableIIIRow", "build_table_iii", "format_table_iii", "slingshot_config",
    "CostSummary", "dragonfly_cost", "fattree_cost", "switchless_cost",
    "FIG15_ENERGY", "TABLE_II_ENERGY", "EnergyBreakdown", "average_energy",
    "path_energy",
    "TABLE_II", "DiameterModel", "HopCost", "switchless_diameter",
    "search_configurations", "total_chiplets", "verify_equation_1",
    "TABLE_I", "ChipSpec", "format_table_i", "format_table_ii",
    "format_table_iv",
    "balanced_parameters", "cgroup_bisection_bandwidth",
    "global_throughput_bound", "intra_cgroup_throughput_bound",
    "is_balanced", "local_throughput_bound",
    "channel_frame", "congestion_evolution", "hot_links",
    "link_load_summary", "misroute_rows", "misroute_table",
]
