"""Trace-based transmission energy accounting (Sec. V-C, Fig. 15).

The paper evaluates energy "based on the energy per physical channel
rather than directly comparing the chip power": run uniform traffic,
collect each packet's hop trace, and charge every hop its Table II class
energy.  Because routes are oblivious, the trace does not require the
cycle simulator — sampling source/destination pairs and walking the
routes gives the exact expectation.

Energy tables are pJ/bit by link class.  ``FIG15_ENERGY`` matches the
paper's simplification "an intra-C-group hop takes 1 pJ/bit on average";
``TABLE_II_ENERGY`` uses the raw Table II values (0.1 on-chip / 2 SR).
The paper also notes the baseline's switches are themselves NoC-based
and thus underestimated — we follow that convention (switch traversal
costs nothing beyond its channels).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..network.packet import Hop
from ..topology.graph import NetworkGraph

__all__ = [
    "TABLE_II_ENERGY",
    "FIG15_ENERGY",
    "EnergyBreakdown",
    "path_energy",
    "average_energy",
]

#: raw Table II per-bit energies by link class.
TABLE_II_ENERGY: Dict[str, float] = {
    "onchip": 0.1,
    "sr": 2.0,
    "local": 20.0,
    "global": 20.0,
    "terminal": 20.0,
}

#: Fig. 15 simplification: intra-C-group hops lumped at 1 pJ/bit.
FIG15_ENERGY: Dict[str, float] = {
    "onchip": 1.0,
    "sr": 1.0,
    "local": 20.0,
    "global": 20.0,
    "terminal": 20.0,
}

#: link classes counted as intra-C-group transport.
INTRA_CLASSES = ("onchip", "sr")


@dataclass
class EnergyBreakdown:
    """Average per-bit transmission energy split as in Fig. 15."""

    #: pJ/bit spent on long-reach channels (local/global/terminal).
    inter_cgroup_pj: float
    #: pJ/bit spent on on-wafer hops (on-chip + short-reach).
    intra_cgroup_pj: float
    #: average hop count per class.
    hops_per_class: Dict[str, float]
    #: number of sampled packets.
    samples: int

    @property
    def total_pj(self) -> float:
        return self.inter_cgroup_pj + self.intra_cgroup_pj


def path_energy(
    graph: NetworkGraph,
    path: Sequence[Hop],
    table: Dict[str, float] = FIG15_ENERGY,
) -> Dict[str, float]:
    """Energy per class (pJ/bit) of one route."""
    out: Dict[str, float] = {}
    for lid, _vc in path:
        klass = graph.links[lid].klass
        out[klass] = out.get(klass, 0.0) + table[klass]
    return out


def average_energy(
    graph: NetworkGraph,
    routing,
    traffic,
    *,
    table: Dict[str, float] = FIG15_ENERGY,
    samples: int = 2000,
    seed: int = 0,
) -> EnergyBreakdown:
    """Average per-bit energy under a traffic pattern.

    Draws ``samples`` (source, destination) pairs from the pattern and
    averages route energy; with oblivious routing this converges to the
    true expectation without cycle simulation.
    """
    rng = random.Random(seed)
    nodes = list(traffic.active_nodes())
    if not nodes:
        raise ValueError("traffic pattern has no active nodes")
    intra = 0.0
    inter = 0.0
    hop_counts: Dict[str, float] = {}
    done = 0
    attempts = 0
    while done < samples and attempts < samples * 20:
        attempts += 1
        src = nodes[rng.randrange(len(nodes))]
        dst = traffic.dest(src, rng)
        if dst is None or dst == src:
            continue
        path = routing.route(src, dst, rng)
        for lid, _vc in path:
            klass = graph.links[lid].klass
            hop_counts[klass] = hop_counts.get(klass, 0.0) + 1.0
            if klass in INTRA_CLASSES:
                intra += table[klass]
            else:
                inter += table[klass]
        done += 1
    if done == 0:
        raise ValueError("could not sample any packets")
    return EnergyBreakdown(
        inter_cgroup_pj=inter / done,
        intra_cgroup_pj=intra / done,
        hops_per_class={k: v / done for k, v in hop_counts.items()},
        samples=done,
    )
