"""``repro.metrics`` — composable observability for the simulator.

The measurement layer the fixed ``SimResult`` aggregate grew out of:
:class:`Probe` objects attach to any of the three simulation cores
through a narrow post-run surface (:class:`RunRecord`) and produce
typed, schema-tagged :class:`MetricChannel` tables that ride inside
``SimResult.channels`` — through the experiment engine, the result
cache, the ``Study``/``StudyResult`` hierarchy, JSON/CSV export and
the ``repro-dragonfly`` CLI.

Design contract (the reason probe-off runs cost nothing):

* cores never call probes from their hot loops — when probing is
  enabled they merely keep a few extra per-*packet* integers they
  already compute (source, destination, completion cycle), and the
  native core's compiled kernel exports the same as bulk output
  arrays decoded afterwards;
* with probing disabled nothing is recorded at all and results are
  bit-identical to a build without this package.

Quickstart::

    from repro.metrics import build_probe
    from repro.network import Simulator

    sim = Simulator(graph, routing, traffic, params,
                    probes=["link_util", "latency_hist"])
    res = sim.run(0.4)
    print(res.channels["link_util"].format_table(max_rows=10))

or declaratively, through the engine/scenario layer::

    spec = ExperimentSpec.create(..., metrics=["link_util", "misroute"])
    study.with_metrics(["timeseries"]).run(workers=4)
"""

from .channel import (
    METRIC_CHANNEL_FRAME_SCHEMA,
    METRIC_CHANNEL_SCHEMA,
    MetricChannel,
)
from .probe import (
    Probe,
    build_probe,
    build_probes,
    list_probes,
    metrics_to_data,
    normalize_metrics,
    probe_descriptions,
    register_probe,
)
from .probes import (
    EjectionFairnessProbe,
    LatencyHistogramProbe,
    LinkUtilizationProbe,
    MisrouteProbe,
    TimeSeriesProbe,
    VCUtilizationProbe,
)
from .record import HopEvent, PacketView, RunRecord

__all__ = [
    "METRIC_CHANNEL_FRAME_SCHEMA",
    "METRIC_CHANNEL_SCHEMA",
    "MetricChannel",
    "Probe",
    "RunRecord",
    "PacketView",
    "HopEvent",
    "EjectionFairnessProbe",
    "LatencyHistogramProbe",
    "LinkUtilizationProbe",
    "MisrouteProbe",
    "TimeSeriesProbe",
    "VCUtilizationProbe",
    "build_probe",
    "build_probes",
    "list_probes",
    "metrics_to_data",
    "normalize_metrics",
    "probe_descriptions",
    "register_probe",
]
