"""The narrow bulk surface between simulator cores and probes.

Probes never run inside a core's hot loop.  Instead every core — when
probing was enabled before its first ``run()`` — keeps a handful of
flat per-packet arrays (source, destination, creation cycle, measured
flag, completion cycle, route slice) it already mostly had, and exports
them after the run as one :class:`RunRecord`.  The probe layer then
*decodes* the record post-run: per-link traversal counts, latency
distributions, completion time series and hop accounting are all pure
functions of these arrays, so every probe is automatically

* **bit-identical across cores** — given the same pinned injection
  schedule, all three cores build the same packet table, hence the
  same record, hence the same channels; and
* **zero-cost when disabled** — the compiled native kernel and the
  array core's per-cycle loop contain no probe callbacks at all, just
  a few per-*packet* (not per-cycle) branches behind a flag.

Event replay: :meth:`RunRecord.events` re-emits the run as a canonical
packet-major event stream (inject, per-hop, eject) for generic
:class:`~repro.metrics.Probe` subclasses; hop events carry route
positions, not cycle stamps — per-hop timing is the one thing the bulk
surface deliberately does not record (it would require per-flit event
logging in the hot loop).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = ["HopEvent", "PacketView", "RunRecord", "failed_links_of"]


def failed_links_of(routing) -> frozenset:
    """Failed link ids of a (possibly fault-wrapped) routing.

    Cores call this while building their record: a
    :class:`~repro.faults.FaultAwareRouting` exposes its
    ``degraded.failed_links`` set; anything else means a healthy run.
    Probes that reason about the graph (BFS floors, load maps) must
    treat these links as nonexistent — no route ever crosses them.
    """
    degraded = getattr(routing, "degraded", None)
    if degraded is None:
        return frozenset()
    return frozenset(degraded.failed_links)


@dataclass(frozen=True)
class HopEvent:
    """One hop of a packet's route: link id and virtual channel."""

    link: int
    vc: int


@dataclass(frozen=True)
class PacketView:
    """Read-only view of one packet in a :class:`RunRecord`."""

    pid: int
    src: int
    dst: int
    t_create: int
    measured: bool
    #: tail-ejection cycle; ``-1`` while undelivered.
    t_done: int
    #: route hop count (0 = src and dst share a router).
    hops: int
    #: flattened ``link * num_vcs + vc`` route indices.
    route_lv: Tuple[int, ...]

    @property
    def delivered(self) -> bool:
        return self.t_done >= 0

    @property
    def latency(self) -> int:
        return self.t_done - self.t_create if self.t_done >= 0 else -1


@dataclass
class RunRecord:
    """Bulk per-packet measurement state of one simulation run.

    All arrays are indexed by packet id; packets span every ``run()``
    call of the producing core instance (the engine uses one instance
    per point, so in practice: one run).
    """

    #: producing core ("array", "native", "reference").
    core: str
    #: offered rate of the run (flits/cycle/chip).
    rate: float
    num_nodes: int
    num_links: int
    num_vcs: int
    packet_length: int
    #: absolute cycle bounds of the measurement window.
    measure_start: int
    measure_end: int
    measure_cycles: int
    active_chips: int
    # -- per-packet arrays (aligned, length = packet count) ------------
    p_src: List[int] = field(default_factory=list)
    p_dst: List[int] = field(default_factory=list)
    p_t0: List[int] = field(default_factory=list)
    p_meas: List[int] = field(default_factory=list)
    #: tail-ejection cycle per packet, -1 while undelivered.  Only
    #: *measured* packets are guaranteed to be tracked (warmup packets
    #: may stay -1 even when delivered) — probes restrict themselves to
    #: the measured population, like ``SimResult`` does.
    p_done: List[int] = field(default_factory=list)
    p_hops: List[int] = field(default_factory=list)
    #: per-packet offset into :attr:`route_lv`.
    p_off: List[int] = field(default_factory=list)
    #: shared flattened route array (``link * num_vcs + vc`` per hop).
    route_lv: Sequence[int] = field(default_factory=list)
    #: node id -> chip id (ejection-fairness accounting).
    node_chip: Dict[int, int] = field(default_factory=dict)
    #: directed link id -> (src node, dst node), for reporting.  Spans
    #: the *healthy* graph (the cores' arrays do too); degraded runs
    #: list the dead subset in :attr:`failed_links`.
    link_ends: List[Tuple[int, int]] = field(default_factory=list)
    #: link ids failed by the run's fault axis (empty when healthy).
    failed_links: frozenset = frozenset()
    #: closed-loop phase records (``()`` for open-loop runs): one dict
    #: per workload phase with name/release/comm_start/done/compute/
    #: packets/flits/masked, in workload order.  The application-level
    #: probes (cct, bubble, overlap) read these.
    phases: Tuple[Dict, ...] = ()

    # ------------------------------------------------------------------
    @property
    def num_packets(self) -> int:
        return len(self.p_t0)

    def packet(self, pid: int) -> PacketView:
        off = self.p_off[pid]
        hops = self.p_hops[pid]
        return PacketView(
            pid=pid,
            src=self.p_src[pid],
            dst=self.p_dst[pid],
            t_create=self.p_t0[pid],
            measured=bool(self.p_meas[pid]),
            t_done=self.p_done[pid],
            hops=hops,
            route_lv=tuple(self.route_lv[off: off + hops]),
        )

    def route(self, pid: int) -> Sequence[int]:
        """Flattened lv route of one packet (empty for 0-hop pairs)."""
        off = self.p_off[pid]
        return self.route_lv[off: off + self.p_hops[pid]]

    def measured_pids(self) -> List[int]:
        """Packet ids created inside the measurement window."""
        return [pid for pid, m in enumerate(self.p_meas) if m]

    def measured_delivered_pids(self) -> List[int]:
        """Measured packets that reported a tail ejection."""
        return [
            pid
            for pid, m in enumerate(self.p_meas)
            if m and self.p_done[pid] >= 0
        ]

    def latency(self, pid: int) -> int:
        return self.p_done[pid] - self.p_t0[pid]

    # ------------------------------------------------------------------
    def events(
        self, measured_only: bool = True
    ) -> Iterator[Tuple[str, PacketView, Optional[HopEvent]]]:
        """Canonical packet-major event replay for generic probes.

        Yields ``("inject", pkt, None)``, then one ``("hop", pkt,
        HopEvent)`` per route hop, then — for delivered packets —
        ``("eject", pkt, None)``, packet by packet in creation order.
        """
        num_vcs = self.num_vcs
        for pid in range(self.num_packets):
            if measured_only and not self.p_meas[pid]:
                continue
            pkt = self.packet(pid)
            yield "inject", pkt, None
            if pkt.delivered:
                for lv in pkt.route_lv:
                    yield "hop", pkt, HopEvent(lv // num_vcs, lv % num_vcs)
                yield "eject", pkt, None
