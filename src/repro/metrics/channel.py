"""Typed metric channels: the serialisable output of a probe.

A :class:`MetricChannel` is a small, schema-tagged table — named columns
plus scalar summary statistics — that one :class:`~repro.metrics.Probe`
produced for one simulation run.  Channels ride inside
:class:`~repro.network.stats.SimResult` (the ``channels`` mapping), so
they flow unchanged through the engine's :class:`~repro.engine.
ResultCache`, the ``StudyResult`` hierarchy, ``to_json``/``to_csv``
export and the ``repro-dragonfly report --channel`` CLI surface.

Cells are restricted to JSON scalars (numbers, strings, booleans,
``None``); ``NaN`` floats are encoded as ``null`` in JSON and as empty
cells in CSV, mirroring the conventions of ``SimResult.to_dict`` and
``StudyResult.to_csv``.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "METRIC_CHANNEL_FRAME_SCHEMA",
    "METRIC_CHANNEL_SCHEMA",
    "MetricChannel",
]

#: stable schema tag of serialised channels; bump the version suffix on
#: incompatible layout changes so foreign payloads are rejected loudly.
METRIC_CHANNEL_SCHEMA = "repro.metric-channel/v1"

#: schema tag of one streaming frame (see :meth:`MetricChannel.
#: to_frames`); the simulation service sends large channels as a frame
#: sequence so subscribers see telemetry rows incrementally instead of
#: one oversized event line.
METRIC_CHANNEL_FRAME_SCHEMA = "repro.metric-channel-frame/v1"


def _encode_cell(value):
    if isinstance(value, float) and math.isnan(value):
        return None
    return value


def _decode_cell(value):
    # ``null`` cells decode back to NaN only where they were floats;
    # the producer wrote None for NaN and nothing else, so this is
    # lossless for the channel kinds we emit.
    if value is None:
        return float("nan")
    return value


def _csv_cell(value) -> str:
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return ""
    if isinstance(value, float):
        return f"{value:.6g}"
    if isinstance(value, bool):
        return "1" if value else "0"
    return str(value)


@dataclass(frozen=True)
class MetricChannel:
    """One probe's tabular output for one simulation run.

    Parameters
    ----------
    name:
        Channel name; by convention the registered probe kind that
        produced it (``link_util``, ``latency_hist``, ...).
    kind:
        Coarse shape tag for consumers: ``"table"``, ``"histogram"``,
        ``"timeseries"`` or ``"counters"``.
    columns:
        Ordered column names of :attr:`rows`.
    rows:
        Row tuples of JSON scalars, one per table entry (may be empty
        for summary-only channels).
    summary:
        Scalar summary statistics (always present, possibly NaN-valued).
    meta:
        Free-form provenance (probe options, units); excluded from
        nothing — it round-trips like the rest.
    """

    name: str
    kind: str = "table"
    columns: Tuple[str, ...] = ()
    rows: Tuple[Tuple, ...] = ()
    summary: Dict[str, float] = field(default_factory=dict)
    meta: Dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a metric channel needs a name")
        for row in self.rows:
            if len(row) != len(self.columns):
                raise ValueError(
                    f"channel {self.name!r}: row {row!r} does not match "
                    f"columns {self.columns!r}"
                )

    # -- access --------------------------------------------------------
    @property
    def num_rows(self) -> int:
        return len(self.rows)

    def column(self, name: str) -> List:
        """One column as a list, by name."""
        try:
            idx = self.columns.index(name)
        except ValueError:
            raise KeyError(
                f"channel {self.name!r} has no column {name!r}; "
                f"columns: {list(self.columns)}"
            ) from None
        return [row[idx] for row in self.rows]

    def top(self, column: str, n: int = 10) -> List[Tuple]:
        """The ``n`` rows with the largest value in ``column``."""
        idx = self.columns.index(column)
        return sorted(self.rows, key=lambda r: r[idx], reverse=True)[:n]

    # -- serialisation -------------------------------------------------
    def to_dict(self) -> Dict:
        return {
            "schema": METRIC_CHANNEL_SCHEMA,
            "name": self.name,
            "kind": self.kind,
            "columns": list(self.columns),
            "rows": [[_encode_cell(v) for v in row] for row in self.rows],
            "summary": {
                k: _encode_cell(v) for k, v in self.summary.items()
            },
            "meta": dict(self.meta),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "MetricChannel":
        schema = data.get("schema")
        if schema is not None and schema != METRIC_CHANNEL_SCHEMA:
            raise ValueError(
                f"cannot read {schema!r} payload as "
                f"{METRIC_CHANNEL_SCHEMA!r}"
            )
        return cls(
            name=data["name"],
            kind=data.get("kind", "table"),
            columns=tuple(data.get("columns", ())),
            rows=tuple(
                tuple(_decode_cell(v) for v in row)
                for row in data.get("rows", ())
            ),
            summary={
                k: _decode_cell(v)
                for k, v in data.get("summary", {}).items()
            },
            meta=dict(data.get("meta", {})),
        )

    # -- streaming frames ----------------------------------------------
    def to_frames(self, max_rows: int = 256) -> List[Dict]:
        """Split into an ordered list of JSON-scalar frames.

        Frame 0 carries the header (name, kind, columns, summary, meta,
        total row/frame counts); every frame carries at most
        ``max_rows`` encoded rows.  A row-less channel still produces
        the single header frame.  :meth:`from_frames` is the lossless
        inverse — the service's streaming endpoint emits one event line
        per frame so a subscriber can render telemetry incrementally.
        """
        if max_rows < 1:
            raise ValueError("max_rows must be >= 1")
        encoded = [
            [_encode_cell(v) for v in row] for row in self.rows
        ]
        slabs = [
            encoded[i : i + max_rows]
            for i in range(0, len(encoded), max_rows)
        ] or [[]]
        frames: List[Dict] = []
        for i, slab in enumerate(slabs):
            frame = {
                "schema": METRIC_CHANNEL_FRAME_SCHEMA,
                "name": self.name,
                "frame": i,
                "frames": len(slabs),
                "rows": slab,
            }
            if i == 0:
                frame["kind"] = self.kind
                frame["columns"] = list(self.columns)
                frame["summary"] = {
                    k: _encode_cell(v) for k, v in self.summary.items()
                }
                frame["meta"] = dict(self.meta)
                frame["num_rows"] = len(encoded)
            frames.append(frame)
        return frames

    @classmethod
    def from_frames(cls, frames: Sequence[Dict]) -> "MetricChannel":
        """Reassemble a channel from :meth:`to_frames` output.

        Frames may arrive as any iterable but must be complete and in
        order for one channel; gaps, reordering, mixed names or a wrong
        schema tag are rejected loudly rather than silently mis-merged.
        """
        frames = list(frames)
        if not frames:
            raise ValueError("cannot assemble a channel from no frames")
        head = frames[0]
        if head.get("schema") != METRIC_CHANNEL_FRAME_SCHEMA:
            raise ValueError(
                f"cannot read {head.get('schema')!r} payload as "
                f"{METRIC_CHANNEL_FRAME_SCHEMA!r}"
            )
        if head.get("frame") != 0 or "columns" not in head:
            raise ValueError("first frame must be the header frame")
        total = int(head.get("frames", len(frames)))
        if len(frames) != total:
            raise ValueError(
                f"channel {head.get('name')!r}: got {len(frames)} "
                f"frame(s), expected {total}"
            )
        rows: List[List] = []
        for i, frame in enumerate(frames):
            if frame.get("name") != head.get("name"):
                raise ValueError(
                    f"frame {i} belongs to channel "
                    f"{frame.get('name')!r}, not {head.get('name')!r}"
                )
            if frame.get("frame") != i:
                raise ValueError(
                    f"frame sequence broken at position {i} "
                    f"(got frame {frame.get('frame')!r})"
                )
            rows.extend(frame.get("rows", ()))
        return cls.from_dict(
            {
                "schema": METRIC_CHANNEL_SCHEMA,
                "name": head["name"],
                "kind": head.get("kind", "table"),
                "columns": head.get("columns", ()),
                "rows": rows,
                "summary": head.get("summary", {}),
                "meta": head.get("meta", {}),
            }
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "MetricChannel":
        return cls.from_dict(json.loads(text))

    def to_csv(self, prefix: Optional[Sequence[str]] = None) -> str:
        """Rows as CSV (header + one line per row).

        ``prefix`` optionally prepends constant ``name=value`` columns —
        the study exporter uses it to tag rows with scenario/curve/rate.
        """
        prefix = list(prefix or ())
        names = [p.split("=", 1)[0] for p in prefix]
        values = [p.split("=", 1)[1] if "=" in p else "" for p in prefix]
        lines = [",".join(names + list(self.columns))]
        for row in self.rows:
            lines.append(
                ",".join(values + [_csv_cell(v) for v in row])
            )
        return "\n".join(lines) + "\n"

    def format_table(self, max_rows: int = 0) -> str:
        """Plain-text rendering: summary line plus aligned rows."""
        out = [f"# channel {self.name} ({self.kind}, {self.num_rows} rows)"]
        if self.summary:
            out.append(
                "  " + "  ".join(
                    f"{k}={_csv_cell(v) or 'nan'}"
                    for k, v in self.summary.items()
                )
            )
        rows = self.rows
        truncated = 0
        if max_rows and len(rows) > max_rows:
            truncated = len(rows) - max_rows
            rows = rows[:max_rows]
        if self.columns:
            widths = [
                max(
                    len(str(c)),
                    max((len(_csv_cell(r[i])) for r in rows), default=0),
                )
                for i, c in enumerate(self.columns)
            ]
            out.append(
                "  ".join(
                    str(c).rjust(w) for c, w in zip(self.columns, widths)
                )
            )
            for row in rows:
                out.append(
                    "  ".join(
                        _csv_cell(v).rjust(w) for v, w in zip(row, widths)
                    )
                )
        if truncated:
            out.append(f"... ({truncated} more rows)")
        return "\n".join(out)
