"""Built-in probe kinds.

Every probe here decodes the :class:`~repro.metrics.RunRecord` bulk
arrays directly (vectorised where it pays) instead of using the generic
event replay, but produces exactly what an event-surface implementation
would: all statistics are restricted to the *measured* packet
population (packets created inside the measurement window), and — for
anything route- or completion-based — to the measured packets that
were actually delivered, mirroring ``SimResult``'s conventions.

Registered kinds:

``link_util``
    flit traversals per directed link (Fig. 13-style link-load maps);
``vc_util``
    the same resolved per (link, virtual channel);
``latency_hist``
    binned latency distribution with the SimResult percentiles;
``timeseries``
    cycle-window telemetry: injections, completions, backlog and
    latency evolution across the measurement window;
``misroute``
    hop accounting against BFS-minimal distances: misroute ratio and
    excess-hop histogram (the Fig. 13 misrouting metric);
``ejection_fairness``
    delivered flits per destination chip with a Jain fairness index;
``cct``
    per-phase collective completion times of a closed-loop workload
    run (empty for open-loop runs);
``bubble``
    communication-idle ("bubble") cycles of the closed-loop makespan;
``overlap``
    compute/communication overlap of a closed-loop run.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from typing import Dict, List, Tuple

import numpy as np

from .channel import MetricChannel
from .probe import Probe, register_probe
from .record import RunRecord

__all__ = [
    "BubbleProbe",
    "CCTProbe",
    "EjectionFairnessProbe",
    "LatencyHistogramProbe",
    "LinkUtilizationProbe",
    "MisrouteProbe",
    "OverlapProbe",
    "TimeSeriesProbe",
    "VCUtilizationProbe",
]


def _nan() -> float:
    return float("nan")


def _mean(values) -> float:
    values = list(values)
    return float(np.mean(values)) if values else _nan()


def _route_flit_counts(record: RunRecord, key) -> Counter:
    """Flit traversals of measured delivered packets, grouped by
    ``key(lv)`` — the one route walk both utilisation probes share."""
    counts: Counter = Counter()
    pkt_len = record.packet_length
    for pid in record.measured_delivered_pids():
        for lv in record.route(pid):
            counts[key(lv)] += pkt_len
    return counts


def _keep_hottest(rows, top: int, flits_index: int):
    """Top-``top`` rows by flit count, re-sorted ascending by id.

    Callers must compute summary statistics from the *full* table
    first — truncation only thins what gets exported as rows.
    """
    if top and len(rows) > top:
        rows = sorted(
            rows, key=lambda r: (-r[flits_index],) + r[:flits_index]
        )[:top]
        rows.sort(key=lambda r: r[:flits_index])
    return rows


# ----------------------------------------------------------------------
@register_probe
class LinkUtilizationProbe(Probe):
    """Flit traversals per directed link (measured delivered packets)."""

    name = "link_util"
    description = (
        "per-link flit load and utilisation (measured delivered packets)"
    )

    def __init__(self, top: int = 0) -> None:
        #: keep only the ``top`` most-loaded links (0 = all used links).
        self.top = int(top)

    def collect(self, record: RunRecord) -> MetricChannel:
        num_vcs = record.num_vcs
        counts = _route_flit_counts(record, lambda lv: lv // num_vcs)
        cycles = max(1, record.measure_cycles)
        total = sum(counts.values())
        rows = []
        for link, flits in sorted(counts.items()):
            src, dst = (
                record.link_ends[link]
                if link < len(record.link_ends)
                else (-1, -1)
            )
            rows.append(
                (
                    link,
                    src,
                    dst,
                    flits,
                    flits / cycles,
                    flits / total if total else 0.0,
                )
            )
        loads = [r[4] for r in rows]  # summary: the FULL table
        max_row = max(rows, key=lambda r: r[3], default=None)
        rows = _keep_hottest(rows, self.top, flits_index=3)
        return MetricChannel(
            name=self.channel_name(),
            kind="table",
            columns=("link", "src", "dst", "flits", "flits_per_cycle",
                     "share"),
            rows=tuple(rows),
            summary={
                "links_used": float(len(counts)),
                "total_flit_hops": float(total),
                "mean_flits_per_cycle": _mean(loads),
                "max_flits_per_cycle": max(loads, default=_nan()),
                "max_link": float(max_row[0]) if max_row else _nan(),
            },
            meta={"top": self.top, "population": "measured_delivered"},
        )


# ----------------------------------------------------------------------
@register_probe
class VCUtilizationProbe(Probe):
    """Flit traversals per (link, virtual channel)."""

    name = "vc_util"
    description = "per-(link, VC) flit load (measured delivered packets)"

    def __init__(self, top: int = 0) -> None:
        self.top = int(top)

    def collect(self, record: RunRecord) -> MetricChannel:
        counts = _route_flit_counts(record, lambda lv: lv)
        cycles = max(1, record.measure_cycles)
        num_vcs = record.num_vcs
        rows = [
            (lv // num_vcs, lv % num_vcs, flits, flits / cycles)
            for lv, flits in sorted(counts.items())
        ]
        loads = [r[2] for r in rows]  # summary: the FULL table
        rows = _keep_hottest(rows, self.top, flits_index=2)
        per_vc: Counter = Counter()
        for lv, flits in counts.items():
            per_vc[lv % num_vcs] += flits
        balance = (
            max(per_vc.values()) / (sum(per_vc.values()) / len(per_vc))
            if per_vc
            else _nan()
        )
        return MetricChannel(
            name=self.channel_name(),
            kind="table",
            columns=("link", "vc", "flits", "flits_per_cycle"),
            rows=tuple(rows),
            summary={
                "lvs_used": float(len(counts)),
                "max_flits": float(max(loads, default=0)),
                "vc_imbalance": balance,
            },
            meta={"top": self.top, "num_vcs": num_vcs},
        )


# ----------------------------------------------------------------------
@register_probe
class LatencyHistogramProbe(Probe):
    """Binned latency distribution of measured delivered packets."""

    name = "latency_hist"
    description = "latency histogram + percentiles (measured packets)"

    def __init__(self, bins: int = 16) -> None:
        if bins < 1:
            raise ValueError("bins must be >= 1")
        self.bins = int(bins)

    def collect(self, record: RunRecord) -> MetricChannel:
        lats = np.asarray(
            [record.latency(pid) for pid in record.measured_delivered_pids()],
            dtype=np.float64,
        )
        if lats.size:
            counts, edges = np.histogram(lats, bins=self.bins)
            rows = tuple(
                (float(edges[i]), float(edges[i + 1]), int(counts[i]))
                for i in range(len(counts))
            )
            summary = {
                "packets": float(lats.size),
                "avg": float(lats.mean()),
                "p50": float(np.percentile(lats, 50)),
                "p99": float(np.percentile(lats, 99)),
                "min": float(lats.min()),
                "max": float(lats.max()),
            }
        else:
            rows = ()
            summary = {
                "packets": 0.0, "avg": _nan(), "p50": _nan(),
                "p99": _nan(), "min": _nan(), "max": _nan(),
            }
        return MetricChannel(
            name=self.channel_name(),
            kind="histogram",
            columns=("bin_lo", "bin_hi", "count"),
            rows=rows,
            summary=summary,
            meta={"bins": self.bins, "unit": "cycles"},
        )


# ----------------------------------------------------------------------
@register_probe
class TimeSeriesProbe(Probe):
    """Cycle-window telemetry across the measurement window.

    Each row covers ``window`` cycles of the measurement window:
    packets injected (created), packets completed (tail ejected —
    completions landing in the drain are folded into a final row),
    the measured-population backlog at window end, and the mean latency
    of the packets *created* in the window (a congestion-onset signal:
    it grows as queues build).
    """

    name = "timeseries"
    description = (
        "windowed injections/completions/backlog/latency evolution"
    )

    def __init__(self, window: int = 200) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = int(window)

    def collect(self, record: RunRecord) -> MetricChannel:
        w = self.window
        start, end = record.measure_start, record.measure_end
        span = max(1, end - start)
        nwin = (span + w - 1) // w
        injected = [0] * (nwin + 1)   # [-1] = fold-over (never used for t0)
        completed = [0] * (nwin + 1)  # [-1] = completions in the drain
        lat_sum = [0] * nwin
        lat_n = [0] * nwin
        for pid in record.measured_pids():
            wi = (record.p_t0[pid] - start) // w
            injected[wi] += 1
            done = record.p_done[pid]
            if done >= 0:
                completed[min((done - start) // w, nwin)] += 1
                lat_sum[wi] += done - record.p_t0[pid]
                lat_n[wi] += 1
        rows = []
        backlog = 0
        for wi in range(nwin):
            backlog += injected[wi] - completed[wi]
            rows.append(
                (
                    start + wi * w,
                    min(start + (wi + 1) * w, end),
                    injected[wi],
                    completed[wi],
                    backlog,
                    lat_sum[wi] / lat_n[wi] if lat_n[wi] else _nan(),
                )
            )
        lat_first = rows[0][5] if rows else _nan()
        lat_last = rows[-1][5] if rows else _nan()
        return MetricChannel(
            name=self.channel_name(),
            kind="timeseries",
            columns=("t_start", "t_end", "injected", "completed",
                     "backlog", "avg_latency"),
            rows=tuple(rows),
            summary={
                "windows": float(nwin),
                "peak_backlog": float(max((r[4] for r in rows), default=0)),
                "completed_in_drain": float(completed[nwin]),
                "first_window_latency": lat_first,
                "last_window_latency": lat_last,
            },
            meta={"window": w, "unit": "cycles"},
        )


# ----------------------------------------------------------------------
@register_probe
class MisrouteProbe(Probe):
    """Hop accounting against BFS-minimal router distances.

    A measured delivered packet is *misrouted* when its route is longer
    than the minimal hop distance from its source to its destination
    router over the simulated graph — exactly the population Valiant
    routing inflates in Fig. 13.  Distances are computed post-run by
    BFS over the record's *surviving* directed links (failed links of
    a degraded run are excluded, so routes repaired around faults are
    measured against an achievable floor), memoised per source.

    Note the floor is *graph*-minimal: flat routings (mesh XY) report a
    0 ratio in minimal mode, while hierarchical policies (switch-less
    l-g-l) are minimal within their channel classes and may exceed the
    unconstrained BFS distance even without Valiant detours.  The
    Fig. 13 signal is therefore the ratio *between* minimal and
    non-minimal runs of the same configuration, which this floor makes
    directly comparable.
    """

    name = "misroute"
    description = (
        "misroute ratio and excess-hop histogram vs BFS-minimal paths"
    )

    def collect(self, record: RunRecord) -> MetricChannel:
        adj: Dict[int, List[int]] = defaultdict(list)
        failed = record.failed_links
        for link, (src, dst) in enumerate(record.link_ends):
            if link in failed:
                continue
            adj[src].append(dst)
        dist_from: Dict[int, Dict[int, int]] = {}

        def dist(src: int, dst: int) -> int:
            table = dist_from.get(src)
            if table is None:
                table = {src: 0}
                frontier = [src]
                while frontier:
                    nxt = []
                    for u in frontier:
                        du = table[u]
                        for v in adj.get(u, ()):
                            if v not in table:
                                table[v] = du + 1
                                nxt.append(v)
                    frontier = nxt
                dist_from[src] = table
            return table.get(dst, -1)

        excess_hist: Counter = Counter()
        packets = 0
        misrouted = 0
        hops_total = 0
        min_total = 0
        for pid in record.measured_delivered_pids():
            hops = record.p_hops[pid]
            lo = dist(record.p_src[pid], record.p_dst[pid])
            if lo < 0:
                # a delivered packet proves the pair was connected, so
                # BFS over the surviving links should always reach;
                # keep the observed route as the floor as a safety net
                lo = hops
            packets += 1
            hops_total += hops
            min_total += lo
            excess = hops - lo
            excess_hist[excess] += 1
            if excess > 0:
                misrouted += 1
        rows = tuple(
            (excess, count) for excess, count in sorted(excess_hist.items())
        )
        return MetricChannel(
            name=self.channel_name(),
            kind="histogram",
            columns=("excess_hops", "packets"),
            rows=rows,
            summary={
                "packets": float(packets),
                "misrouted": float(misrouted),
                "misroute_ratio": misrouted / packets if packets else _nan(),
                "avg_hops": hops_total / packets if packets else _nan(),
                "avg_min_hops": min_total / packets if packets else _nan(),
                "avg_excess": (
                    (hops_total - min_total) / packets if packets else _nan()
                ),
                "max_excess": float(max(excess_hist, default=0)),
            },
            meta={"population": "measured_delivered"},
        )


# ----------------------------------------------------------------------
@register_probe
class EjectionFairnessProbe(Probe):
    """Delivered flits per destination chip + Jain fairness index."""

    name = "ejection_fairness"
    description = "per-destination-chip delivered flits + Jain index"

    def collect(self, record: RunRecord) -> MetricChannel:
        pkt_len = record.packet_length
        per_chip: Counter = Counter()
        pkts_per_chip: Counter = Counter()
        for pid in record.measured_delivered_pids():
            chip = record.node_chip.get(record.p_dst[pid], -1)
            per_chip[chip] += pkt_len
            pkts_per_chip[chip] += 1
        rows = tuple(
            (chip, pkts_per_chip[chip], flits)
            for chip, flits in sorted(per_chip.items())
        )
        flits = list(per_chip.values())
        if flits:
            total = float(sum(flits))
            sq = float(sum(f * f for f in flits))
            jain = total * total / (len(flits) * sq) if sq else _nan()
        else:
            jain = _nan()
        return MetricChannel(
            name=self.channel_name(),
            kind="table",
            columns=("chip", "packets", "flits"),
            rows=rows,
            summary={
                "chips": float(len(per_chip)),
                "jain_index": jain,
                "min_flits": float(min(flits, default=0)),
                "max_flits": float(max(flits, default=0)),
                "mean_flits": _mean(flits),
            },
            meta={"population": "measured_delivered"},
        )


# ----------------------------------------------------------------------
# Closed-loop application metrics.  These read RunRecord.phases — the
# per-phase completion records a PhasePlan leaves behind — and degrade
# to empty channels on open-loop runs (phases == ()).

def _interval_union(intervals) -> List[Tuple[int, int]]:
    """Merge half-open ``[lo, hi)`` intervals into a disjoint union."""
    merged: List[Tuple[int, int]] = []
    for lo, hi in sorted(i for i in intervals if i[1] > i[0]):
        if merged and lo <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
        else:
            merged.append((lo, hi))
    return merged


def _union_length(merged) -> int:
    return sum(hi - lo for lo, hi in merged)


def _comm_intervals(phases) -> List[Tuple[int, int]]:
    """Half-open comm spans ``[comm_start, done + 1)`` per comm phase."""
    return [
        (p["comm_start"], p["done"] + 1)
        for p in phases
        if p["comm_start"] >= 0 and p["done"] >= 0
    ]


def _makespan(phases) -> Tuple[int, int]:
    """(start, end) of the workload: first release to last done + 1."""
    starts = [p["release"] for p in phases if p["release"] >= 0]
    ends = [p["done"] + 1 for p in phases if p["done"] >= 0]
    if not starts or not ends:
        return (0, 0)
    return (min(starts), max(ends))


@register_probe
class CCTProbe(Probe):
    """Per-phase collective completion times of a closed-loop run.

    One row per workload phase: release cycle (all dependencies
    drained), first injection cycle, completion cycle (last tail flit
    ejected), the phase's completion time ``cct = done - release + 1``,
    and its packet/flit/masked counts.  The summary carries the
    workload makespan and the critical (slowest) phase.
    """

    name = "cct"
    description = (
        "per-phase collective completion times (closed-loop runs)"
    )

    def collect(self, record: RunRecord) -> MetricChannel:
        phases = record.phases
        rows = []
        for p in phases:
            cct = p["done"] - p["release"] + 1 if p["done"] >= 0 else -1
            rows.append(
                (
                    p["name"],
                    p["release"],
                    p["comm_start"],
                    p["done"],
                    cct,
                    p["compute"],
                    p["packets"],
                    p["flits"],
                    p["masked"],
                )
            )
        ccts = [r[4] for r in rows if r[4] >= 0]
        start, end = _makespan(phases)
        crit = max(rows, key=lambda r: r[4], default=None)
        return MetricChannel(
            name=self.channel_name(),
            kind="table",
            columns=("phase", "release", "comm_start", "done", "cct",
                     "compute", "packets", "flits", "masked"),
            rows=tuple(rows),
            summary={
                "phases": float(len(phases)),
                "makespan": float(end - start),
                "avg_cct": _mean(ccts),
                "max_cct": float(max(ccts, default=-1)),
                "critical_phase": (
                    float(rows.index(crit)) if crit else _nan()
                ),
                "total_flits": float(sum(r[7] for r in rows)),
                "masked_packets": float(sum(r[8] for r in rows)),
            },
            meta={"population": "closed_loop_phases"},
        )


@register_probe
class BubbleProbe(Probe):
    """Communication-idle ("bubble") share of the closed-loop makespan.

    Merges the per-phase comm spans into a disjoint union; every
    makespan cycle outside that union is a bubble — cycles the fabric
    sat idle waiting on dependencies or compute.  Rows list the merged
    busy intervals.
    """

    name = "bubble"
    description = (
        "communication-idle (bubble) fraction of the closed-loop "
        "makespan"
    )

    def collect(self, record: RunRecord) -> MetricChannel:
        phases = record.phases
        start, end = _makespan(phases)
        makespan = end - start
        busy = _interval_union(_comm_intervals(phases))
        comm_busy = _union_length(busy)
        bubble = max(0, makespan - comm_busy)
        return MetricChannel(
            name=self.channel_name(),
            kind="table",
            columns=("t_start", "t_end", "cycles"),
            rows=tuple((lo, hi, hi - lo) for lo, hi in busy),
            summary={
                "makespan": float(makespan),
                "comm_busy_cycles": float(comm_busy),
                "bubble_cycles": float(bubble),
                "bubble_fraction": (
                    bubble / makespan if makespan else _nan()
                ),
            },
            meta={"population": "closed_loop_phases"},
        )


@register_probe
class OverlapProbe(Probe):
    """Compute/communication overlap of a closed-loop run.

    Compute spans are ``[release, release + compute)`` per phase; comm
    spans as in the bubble probe.  The overlap is the intersection of
    the two unions — cycles where some phase computed while another
    communicated — reported as a fraction of the total compute span
    (1.0 = compute fully hidden behind communication).
    """

    name = "overlap"
    description = (
        "compute/communication overlap fraction (closed-loop runs)"
    )

    def collect(self, record: RunRecord) -> MetricChannel:
        phases = record.phases
        compute = _interval_union(
            (p["release"], p["release"] + p["compute"])
            for p in phases
            if p["release"] >= 0 and p["compute"] > 0
        )
        comm = _interval_union(_comm_intervals(phases))
        overlap: List[Tuple[int, int]] = []
        i = j = 0
        while i < len(compute) and j < len(comm):
            lo = max(compute[i][0], comm[j][0])
            hi = min(compute[i][1], comm[j][1])
            if lo < hi:
                overlap.append((lo, hi))
            if compute[i][1] <= comm[j][1]:
                i += 1
            else:
                j += 1
        compute_busy = _union_length(compute)
        comm_busy = _union_length(comm)
        hidden = _union_length(overlap)
        return MetricChannel(
            name=self.channel_name(),
            kind="table",
            columns=("t_start", "t_end", "cycles"),
            rows=tuple((lo, hi, hi - lo) for lo, hi in overlap),
            summary={
                "compute_cycles": float(compute_busy),
                "comm_busy_cycles": float(comm_busy),
                "overlap_cycles": float(hidden),
                "overlap_fraction": (
                    hidden / compute_busy if compute_busy else _nan()
                ),
            },
            meta={"population": "closed_loop_phases"},
        )
