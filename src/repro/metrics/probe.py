"""The probe interface and the registry of probe kinds.

A :class:`Probe` turns one run's :class:`~repro.metrics.RunRecord` into
one :class:`~repro.metrics.MetricChannel`.  Subclasses either

* implement the narrow *event surface* — ``on_inject`` / ``on_hop`` /
  ``on_eject`` plus ``begin``/``finish`` — and inherit the generic
  :meth:`Probe.collect` replay; or
* override :meth:`Probe.collect` outright and decode the record's bulk
  arrays directly (what the built-in probes do, with numpy).

Either way probes run strictly *post-run*: the simulator hot loops (and
the compiled native kernel) contain no probe callbacks, which is what
keeps probe-off runs bit-identical to — and as fast as — a build
without the metrics layer.

Probe kinds register under a stable name (``@register_probe``) so the
declarative :class:`~repro.engine.ExperimentSpec` can carry a hashed
``metrics`` axis of ``(name, options)`` entries and worker processes
can rebuild the probes from the registry.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple, Type

from .channel import MetricChannel
from .record import HopEvent, PacketView, RunRecord

__all__ = [
    "Probe",
    "build_probe",
    "build_probes",
    "list_probes",
    "normalize_metrics",
    "probe_descriptions",
    "register_probe",
]


class Probe:
    """Base class of all metric probes (see module docstring)."""

    #: registered kind name; doubles as the produced channel's name.
    name: str = ""
    #: one-line description shown by ``repro-dragonfly metrics``.
    description: str = ""

    def channel_name(self) -> str:
        """Name the produced channel carries (defaults to the kind)."""
        return self.name

    # -- generic event-replay path -------------------------------------
    def begin(self, record: RunRecord) -> None:
        """Reset per-run state before the event replay."""

    def on_inject(self, pkt: PacketView) -> None:
        """One measured packet entered the network."""

    def on_hop(self, pkt: PacketView, hop: HopEvent) -> None:
        """One route hop of a delivered measured packet."""

    def on_eject(self, pkt: PacketView) -> None:
        """A delivered measured packet left the network."""

    def finish(self, record: RunRecord) -> MetricChannel:
        """Produce the channel after the replay."""
        raise NotImplementedError

    def collect(self, record: RunRecord) -> MetricChannel:
        """Record -> channel; default replays the canonical events."""
        self.begin(record)
        for kind, pkt, hop in record.events():
            if kind == "inject":
                self.on_inject(pkt)
            elif kind == "hop":
                self.on_hop(pkt, hop)
            else:
                self.on_eject(pkt)
        return self.finish(record)


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
_PROBES: Dict[str, Type[Probe]] = {}


def register_probe(cls: Type[Probe]) -> Type[Probe]:
    """Class decorator registering a probe kind under ``cls.name``."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} needs a non-empty name")
    if cls.name in _PROBES:
        raise ValueError(f"probe kind {cls.name!r} is already registered")
    _PROBES[cls.name] = cls
    return cls


def list_probes() -> List[str]:
    """Registered probe kind names, sorted."""
    return sorted(_PROBES)


def probe_descriptions() -> Dict[str, str]:
    """kind -> one-line description, for the CLI listing."""
    return {name: _PROBES[name].description for name in list_probes()}


def build_probe(name: str, **options) -> Probe:
    """Instantiate one registered probe kind."""
    try:
        cls = _PROBES[name]
    except KeyError:
        raise ValueError(
            f"unknown probe kind {name!r}; registered: {list_probes()}"
        ) from None
    return cls(**options)


def normalize_metrics(metrics) -> Tuple[Tuple[str, Tuple], ...]:
    """Validate and canonicalise a metrics axis.

    Accepts an iterable whose entries are probe kind names, ``(name,
    options-dict)`` pairs, or the already-frozen ``(name, ((k, v),
    ...))`` form, and returns the frozen canonical tuple the
    :class:`~repro.engine.ExperimentSpec` stores and hashes.  Every
    entry is instantiated once here, so bad kinds or options fail at
    spec-creation time, not inside a worker.
    """
    if metrics is None:
        return ()
    if isinstance(metrics, str):
        metrics = [metrics]
    frozen = []
    seen = set()
    for entry in metrics:
        if isinstance(entry, str):
            name, opts = entry, {}
        else:
            name, raw = entry
            opts = dict(raw)
        if name in seen:
            # channels are keyed by name on the result, so a duplicate
            # kind would silently overwrite the first one's channel
            raise ValueError(
                f"probe kind {name!r} appears twice in the metrics axis"
            )
        seen.add(name)
        for key, val in opts.items():
            if not isinstance(key, str) or not isinstance(
                val, (bool, int, float, str, type(None))
            ):
                raise TypeError(
                    f"probe option {key!r}={val!r} is not "
                    "spec-serialisable (scalars only)"
                )
        build_probe(name, **opts)  # fail fast
        frozen.append((name, tuple(sorted(opts.items()))))
    return tuple(frozen)


def build_probes(metrics) -> List[Probe]:
    """Realise a (possibly frozen) metrics axis into probe instances."""
    return [
        build_probe(name, **dict(opts))
        for name, opts in normalize_metrics(metrics)
    ]


def metrics_to_data(metrics: Sequence) -> List:
    """JSON view of a frozen metrics axis (names, or [name, opts])."""
    out: List = []
    for name, opts in metrics:
        out.append(name if not opts else [name, dict(opts)])
    return out
