"""C-group: an on-wafer mesh of chiplets with labeled external ports.

A C-group replaces one Dragonfly switch (Sec. III-A2).  Its ``k`` external
ports are ordered per Property 2 — local ports toward lower C-groups,
then global ports, then local ports toward higher C-groups — and attached
to perimeter nodes clockwise in rank order, so port rank order coincides
with perimeter position order and with the ring-peel label order.  That
alignment is what makes monotone (all-up / all-down) boundary walks exist
between any two ports (the constructive Property 1(c2)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..topology.graph import NetworkGraph
from ..topology.mesh import MeshBlock, MeshSpec, build_mesh, xy_links
from .config import SwitchlessConfig
from .labeling import CGroupLabeling

__all__ = ["PortInfo", "CGroup"]


@dataclass(frozen=True)
class PortInfo:
    """One external port of a C-group."""

    #: Property-2 rank, 0..k-1 (lower locals < globals < higher locals).
    rank: int
    #: "local" or "global".
    role: str
    #: local: peer C-group index in the W-group; global: port index 0..h-1.
    peer: int
    #: node id the port attaches to.
    attach: int
    #: perimeter position index of the attach node.
    position: int
    #: port label (above every node label, Sec. IV-B).
    label: int


class CGroup:
    """One C-group instantiated inside the system graph."""

    def __init__(
        self,
        cfg: SwitchlessConfig,
        wgroup: int,
        index: int,
        graph: NetworkGraph,
        chip_base: int,
    ) -> None:
        self.cfg = cfg
        self.wgroup = wgroup
        self.index = index
        self.mesh: MeshBlock = build_mesh(
            MeshSpec(
                dim=cfg.mesh_dim,
                chiplet_dim=cfg.chiplet_dim,
                sr_latency=cfg.sr_latency,
                onchip_latency=cfg.onchip_latency,
                capacity=cfg.mesh_capacity,
            ),
            graph,
            chip_base=chip_base,
            coord_prefix=(wgroup, index),
        )
        self.labeling = CGroupLabeling.build(cfg.mesh_dim, cfg.num_ports)

        #: perimeter node ids clockwise from top-left.
        self.perimeter: List[int] = self.mesh.perimeter_nodes()
        #: node id -> perimeter position.
        self.position_of: Dict[int, int] = {
            nid: i for i, nid in enumerate(self.perimeter)
        }

        # ---- ports in Property-2 rank order --------------------------
        ab = cfg.cgroups_per_wgroup
        order: List[Tuple[str, int]] = []
        for peer in range(index):
            order.append(("local", peer))
        for gp in range(cfg.num_global):
            order.append(("global", gp))
        for peer in range(index + 1, ab):
            order.append(("local", peer))

        k = len(order)
        P = len(self.perimeter)
        self.ports: List[PortInfo] = []
        self._local_by_peer: Dict[int, PortInfo] = {}
        self._global_by_idx: Dict[int, PortInfo] = {}
        for rank, (role, peer) in enumerate(order):
            pos = rank * P // k  # non-decreasing in rank: order preserved
            port = PortInfo(
                rank=rank,
                role=role,
                peer=peer,
                attach=self.perimeter[pos],
                position=pos,
                label=self.labeling.port_labels[rank],
            )
            self.ports.append(port)
            if role == "local":
                self._local_by_peer[peer] = port
            else:
                self._global_by_idx[peer] = port

    # ------------------------------------------------------------------
    @property
    def nodes(self) -> List[int]:
        return [nid for row in self.mesh.grid for nid in row]

    def local_port(self, peer: int) -> PortInfo:
        """Port connecting to C-group ``peer`` of the same W-group."""
        return self._local_by_peer[peer]

    def global_port(self, idx: int) -> PortInfo:
        """The ``idx``-th global port (0..h-1)."""
        return self._global_by_idx[idx]

    def node_label(self, nid: int) -> int:
        y, x = self.mesh.coords[nid]
        return self.labeling.label_at(y, x)

    # ------------------------------------------------------------------
    def boundary_walk(self, src: int, dst: int) -> List[int]:
        """Monotone perimeter walk between two perimeter nodes.

        Walks the boundary ring from ``src`` to ``dst`` on the arc that
        never crosses the seam (between positions P-1 and 0), so node
        labels are strictly increasing (``pos(dst) > pos(src)``: an
        *up-only* path) or strictly decreasing (*down-only*).  Used for
        the transit segments of the VC-reduced routing.
        """
        p1 = self.position_of[src]
        p2 = self.position_of[dst]
        graph = self.mesh.graph
        links: List[int] = []
        step = 1 if p2 > p1 else -1
        pos = p1
        while pos != p2:
            nxt = pos + step
            links.append(
                graph.link_between(self.perimeter[pos], self.perimeter[nxt])
            )
            pos = nxt
        return links

    def walk_is_up(self, src: int, dst: int) -> Optional[bool]:
        """Direction of the boundary walk (None when src == dst)."""
        p1 = self.position_of[src]
        p2 = self.position_of[dst]
        if p1 == p2:
            return None
        return p2 > p1

    # -- unified path interface used by SwitchlessRouting ---------------
    def route_links(self, src: int, dst: int) -> List[int]:
        """Generic shortest intra-C-group path (XY dimension order)."""
        return xy_links(self.mesh, src, dst)

    def transit_links(self, src: int, dst: int) -> List[int]:
        """Monotone port-to-port transit path (boundary walk)."""
        return self.boundary_walk(src, dst)

    def delivery_links(self, src: int, dst: int) -> List[int]:
        """Dive-first delivery path from a boundary entry to any core.

        Used by the VC-reduced routing for the final port->core segment,
        which shares a VC with boundary transit walks: the path dives off
        the boundary ring as fast as possible, routes XY inside the
        interior subgrid, and re-emerges at the destination, so it shares
        no boundary-ring link with transit walks except the unavoidable
        final approach to corner destinations (quantified by the CDG
        checker in the test suite).  Falls back to plain XY on meshes too
        small to have an interior.
        """
        d = self.cfg.mesh_dim
        if d < 3 or src == dst:
            return xy_links(self.mesh, src, dst)
        graph = self.mesh.graph
        grid = self.mesh.grid
        lo, hi = 1, d - 2

        def clamp(v: int) -> int:
            return min(max(v, lo), hi)

        sy, sx = self.mesh.coords[src]
        dy, dx = self.mesh.coords[dst]
        seq = [(sy, sx)]
        cy, cx = sy, sx
        # dive into the interior: y first, then x
        while cy != clamp(cy):
            cy += 1 if cy < lo else -1
            seq.append((cy, cx))
        while cx != clamp(cx):
            cx += 1 if cx < lo else -1
            seq.append((cy, cx))
        # XY inside the interior toward the destination's projection
        ty, tx = clamp(dy), clamp(dx)
        while cx != tx:
            cx += 1 if cx < tx else -1
            seq.append((cy, cx))
        while cy != ty:
            cy += 1 if cy < ty else -1
            seq.append((cy, cx))
        # emerge: x first, then y (at most one step each)
        while cx != dx:
            cx += 1 if cx < dx else -1
            seq.append((cy, cx))
        while cy != dy:
            cy += 1 if cy < dy else -1
            seq.append((cy, cx))
        links: List[int] = []
        for (ay, ax), (by, bx) in zip(seq, seq[1:]):
            links.append(graph.link_between(grid[ay][ax], grid[by][bx]))
        return links
