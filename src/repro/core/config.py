"""Configuration of the wafer-based switch-less Dragonfly (Sec. III).

Bridging the paper's symbols to this implementation:

===========  ==============================================================
paper        here
===========  ==============================================================
``n``        external interfaces per chiplet = ``k * chiplet_dim**2 /
             mesh_dim**2`` (derived; the builder works at node granularity)
``m``        chiplets per C-group side = ``mesh_dim / chiplet_dim``
``k``        external ports per C-group = ``num_local + num_global``
``a``        C-groups per wafer (``cgroups_per_wafer``)
``b``        wafers per W-group (``wafers_per_wgroup``)
``a*b``      C-groups per W-group = ``num_local + 1`` (full local connect)
``h``        global ports per C-group = ``num_global``
``g``        W-groups = ``num_wgroups`` (default ``a*b*h + 1``)
``N``        total chips = ``g * a*b * chips_per_cgroup``
===========  ==============================================================

A C-group is an ``mesh_dim x mesh_dim`` grid of on-chip routers (nodes);
chiplets are ``chiplet_dim``-square node blocks.  External ports attach to
perimeter nodes, spread evenly clockwise, and are ordered per Property 2:
local ports toward lower C-groups, then global ports, then local ports
toward higher C-groups.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

__all__ = ["SwitchlessConfig"]


@dataclass(frozen=True)
class SwitchlessConfig:
    """Parameters of one switch-less Dragonfly system."""

    #: nodes (on-chip routers) per C-group side.
    mesh_dim: int
    #: nodes per chiplet side (must divide mesh_dim).
    chiplet_dim: int
    #: local ports per C-group; C-groups per W-group = num_local + 1.
    num_local: int
    #: global ports per C-group (0 allowed for single-W-group systems).
    num_global: int
    #: W-groups in the system; default = a*b*h + 1 (maximum).
    num_wgroups: Optional[int] = None
    #: C-groups per wafer (cost/layout metadata only).
    cgroups_per_wafer: int = 1
    #: on-wafer short-reach link latency (cycles).
    sr_latency: int = 1
    #: long-reach (local/global channel) latency (cycles).
    lr_latency: int = 8
    #: on-chip hop latency (cycles).
    onchip_latency: int = 1
    #: intra-C-group link capacity multiplier: 1 = base, 2 = "2B", 4 = "4B".
    mesh_capacity: int = 1
    #: local/global channel capacity (kept 1 to match the baseline).
    lr_capacity: int = 1
    #: intra-C-group architecture: "mesh" (Fig. 8(b)) or "io-router"
    #: (Fig. 8(a), all external ports on one hub router).
    cgroup_style: str = "mesh"

    def __post_init__(self) -> None:
        if self.mesh_dim < 1:
            raise ValueError("mesh_dim must be >= 1")
        if self.chiplet_dim < 1 or self.mesh_dim % self.chiplet_dim:
            raise ValueError("chiplet_dim must divide mesh_dim")
        if self.num_local < 1:
            raise ValueError("num_local must be >= 1 (at least 2 C-groups)")
        if self.num_global < 0:
            raise ValueError("num_global must be >= 0")
        if self.mesh_capacity < 1 or self.lr_capacity < 1:
            raise ValueError("capacities must be >= 1")
        if self.cgroup_style not in ("mesh", "io-router"):
            raise ValueError(f"unknown cgroup_style {self.cgroup_style!r}")
        g = self.num_wgroups_effective
        if g < 1:
            raise ValueError("need at least one W-group")
        if g > 1 and self.num_global < 1:
            raise ValueError("multi-W-group systems need num_global >= 1")
        if g > self.max_wgroups:
            raise ValueError(
                f"num_wgroups={g} exceeds a*b*h+1={self.max_wgroups}"
            )
        if self.cgroups_per_wafer < 1 or (
            self.cgroups_per_wgroup % self.cgroups_per_wafer
        ):
            raise ValueError(
                "cgroups_per_wafer must divide C-groups per W-group "
                f"({self.cgroups_per_wgroup})"
            )

    # ------------------------------------------------------------------
    # derived structure
    # ------------------------------------------------------------------
    @property
    def cgroups_per_wgroup(self) -> int:
        """a*b: full local connectivity needs num_local + 1 C-groups."""
        return self.num_local + 1

    @property
    def wafers_per_wgroup(self) -> int:
        """b in the paper's notation."""
        return self.cgroups_per_wgroup // self.cgroups_per_wafer

    @property
    def max_wgroups(self) -> int:
        """g_max = a*b*h + 1 (Sec. III-A4)."""
        if self.num_global == 0:
            return 1
        return self.cgroups_per_wgroup * self.num_global + 1

    @property
    def num_wgroups_effective(self) -> int:
        return (
            self.num_wgroups if self.num_wgroups is not None else self.max_wgroups
        )

    @property
    def num_ports(self) -> int:
        """k: external ports per C-group."""
        return self.num_local + self.num_global

    @property
    def nodes_per_cgroup(self) -> int:
        return self.mesh_dim * self.mesh_dim

    @property
    def chips_per_cgroup(self) -> int:
        return (self.mesh_dim // self.chiplet_dim) ** 2

    @property
    def nodes_per_chip(self) -> int:
        return self.chiplet_dim * self.chiplet_dim

    @property
    def num_cgroups(self) -> int:
        return self.num_wgroups_effective * self.cgroups_per_wgroup

    @property
    def num_chips(self) -> int:
        """N at chip granularity."""
        return self.num_cgroups * self.chips_per_cgroup

    @property
    def num_nodes(self) -> int:
        return self.num_cgroups * self.nodes_per_cgroup

    # -- paper-notation views ------------------------------------------
    @property
    def paper_m(self) -> int:
        """m: chiplets per C-group side."""
        return self.mesh_dim // self.chiplet_dim

    @property
    def paper_n(self) -> float:
        """n: external interfaces per chiplet = k / m."""
        return self.num_ports / self.paper_m

    def with_bandwidth(self, multiplier: int) -> "SwitchlessConfig":
        """The paper's 2B/4B variants: scale intra-C-group capacity."""
        return replace(self, mesh_capacity=multiplier)

    # ------------------------------------------------------------------
    # paper configurations
    # ------------------------------------------------------------------
    @classmethod
    def radix16_equiv(cls, **kw) -> "SwitchlessConfig":
        """Sec. V-B1: C-group of 2x2 chiplets with 2x2 on-chip routers,
        12 external ports (7 local + 5 global), 41 W-groups, 1312 chips.
        Equivalent to the radix-16 switch-based Dragonfly, and identical
        to the (a, b, m, n) = (2, 4, 2, 6) configuration of Sec. III-B1.
        """
        kw.setdefault("cgroups_per_wafer", 2)
        return cls(
            mesh_dim=4, chiplet_dim=2, num_local=7, num_global=5, **kw
        )

    @classmethod
    def radix32_equiv(cls, **kw) -> "SwitchlessConfig":
        """Sec. V-B3 large-scale system: 7x7 C-group mesh (Fig. 15(b)),
        24 external ports (15 local + 9 global), 145 W-groups.

        Substitution note: the paper reports 18560 chips for the radix-32
        *switch-based* baseline; the equivalent C-group needs a 7x7 node
        mesh whose 49 nodes do not tile into the baseline's 8-node chips,
        so we model one node per chip here and normalise rates per chip
        as everywhere else.
        """
        kw.setdefault("cgroups_per_wafer", 4)
        return cls(
            mesh_dim=7, chiplet_dim=1, num_local=15, num_global=9, **kw
        )

    @classmethod
    def radix8_equiv(cls, **kw) -> "SwitchlessConfig":
        """Tiny 3x3-mesh config (5 ports: 3 local + 2 global, 9 W-groups,
        324 nodes).  Used by fast tests; note that 3x3 C-groups have no
        usable mesh interior, so the *reduced* VC policy is knowingly
        cyclic here (see EXPERIMENTS.md) — use the baseline policy."""
        return cls(
            mesh_dim=3, chiplet_dim=1, num_local=3, num_global=2, **kw
        )

    @classmethod
    def small_equiv(cls, **kw) -> "SwitchlessConfig":
        """CI-scale counterpart of :meth:`DragonflyConfig.small_equiv`:
        4x4 C-group of 2x2 chiplets (4 chips, like the baseline's p=4),
        3 local + 2 global ports, 9 W-groups, 144 chips / 576 nodes.
        Keeps the radix-16 experiment's per-chip global bandwidth ratio
        at a simulatable size."""
        return cls(
            mesh_dim=4, chiplet_dim=2, num_local=3, num_global=2, **kw
        )

    @classmethod
    def case_study(cls, **kw) -> "SwitchlessConfig":
        """Sec. III-C flagship: n=12, m=4 (so a 4x4 chiplet C-group),
        a=4 C-groups per wafer, b=8 wafers per W-group, k=48 ports
        (31 local + 17 global), g=545, N=279040 chips.

        Far too large to simulate cycle-accurately; used by the analytical
        cost/scalability models (Table III).
        """
        kw.setdefault("cgroups_per_wafer", 4)
        kw.setdefault("chiplet_dim", 1)
        return cls(
            mesh_dim=4, num_local=31, num_global=17, **kw
        )
