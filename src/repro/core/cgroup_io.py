"""IO-router-based C-group (paper Fig. 8(a)).

Instead of distributing external ports along a mesh boundary, every
external interface connects to one on-wafer IO router (as in EPYC, TofuD,
H100 and the TPU, Sec. IV-C).  Chips attach to the hub by individual
channels.

This variant *literally satisfies* Properties 1 and 2: all ports share the
hub as their attachment point, so port-to-port transit needs zero mesh
hops (c2 trivially), and every port-to-core delivery is the single down
hop hub -> core (c1 holds with cores below the hub).  The VC-reduced
3-VC routing is therefore provably deadlock free here — the constructive
existence proof for the paper's Sec. IV-B claim — at the cost the paper
itself names: "the IO router can become the bottleneck, and the
chip-to-chip bandwidth does not scale with the chip scale."
"""

from __future__ import annotations

from typing import Dict, List

from ..topology.graph import NetworkGraph
from ..topology.mesh import DEFAULT_ENERGY
from .cgroup import PortInfo
from .config import SwitchlessConfig
from .labeling import CGroupLabeling

__all__ = ["IORouterCGroup"]


class IORouterCGroup:
    """One hub-based C-group: chips star-connected to an IO router."""

    def __init__(
        self,
        cfg: SwitchlessConfig,
        wgroup: int,
        index: int,
        graph: NetworkGraph,
        chip_base: int,
    ) -> None:
        self.cfg = cfg
        self.wgroup = wgroup
        self.index = index

        num_chips = cfg.chips_per_cgroup
        self.cores: List[int] = []
        for i in range(num_chips):
            nid = graph.add_node(
                "core", chip_base + i, is_terminal=True,
                coords=(wgroup, index, i),
            )
            self.cores.append(nid)
        self.hub: int = graph.add_node(
            "io-router", -1, is_terminal=False,
            coords=(wgroup, index, -1),
        )
        for nid in self.cores:
            graph.add_channel(
                nid, self.hub,
                latency=cfg.sr_latency,
                capacity=cfg.mesh_capacity,
                energy_pj=DEFAULT_ENERGY["sr"],
                klass="sr",
            )
        self._graph = graph

        # ports: all attach at the hub, Property-2 rank order retained
        self.labeling = CGroupLabeling.build(1, cfg.num_ports)
        ab = cfg.cgroups_per_wgroup
        order = (
            [("local", p) for p in range(index)]
            + [("global", gp) for gp in range(cfg.num_global)]
            + [("local", p) for p in range(index + 1, ab)]
        )
        self.ports: List[PortInfo] = []
        self._local_by_peer: Dict[int, PortInfo] = {}
        self._global_by_idx: Dict[int, PortInfo] = {}
        for rank, (role, peer) in enumerate(order):
            port = PortInfo(
                rank=rank, role=role, peer=peer,
                attach=self.hub, position=0,
                label=self.labeling.port_labels[rank],
            )
            self.ports.append(port)
            if role == "local":
                self._local_by_peer[peer] = port
            else:
                self._global_by_idx[peer] = port

    # -- same lookup interface as the mesh CGroup -----------------------
    @property
    def nodes(self) -> List[int]:
        return list(self.cores) + [self.hub]

    def local_port(self, peer: int) -> PortInfo:
        return self._local_by_peer[peer]

    def global_port(self, idx: int) -> PortInfo:
        return self._global_by_idx[idx]

    # -- unified path interface ------------------------------------------
    def _star_path(self, src: int, dst: int) -> List[int]:
        if src == dst:
            return []
        g = self._graph
        if src == self.hub or dst == self.hub:
            return [g.link_between(src, dst)]
        return [
            g.link_between(src, self.hub),
            g.link_between(self.hub, dst),
        ]

    def route_links(self, src: int, dst: int) -> List[int]:
        return self._star_path(src, dst)

    def transit_links(self, src: int, dst: int) -> List[int]:
        """Port-to-port transit: both ports live on the hub (zero hops)."""
        if src != self.hub or dst != self.hub:
            return self._star_path(src, dst)
        return []

    def delivery_links(self, src: int, dst: int) -> List[int]:
        """Hub -> core: the literal down-only path of Property 1(c1)."""
        return self._star_path(src, dst)
