"""Node/port labeling and up/down channel typing (Sec. IV-B).

Definition 1 (paper): a channel from node ``(w_i, c_i, n_i)`` to
``(w_j, c_j, n_j)`` is **up** iff the source tuple is lexicographically
smaller; a path is *legal* for up*/down* routing when it never uses an up
channel after a down channel.

The labeling implemented here is the ring-peel labeling (the paper's
Fig. 8(b)/(c) family): node labels increase from the centre of the mesh
outwards, with every ring labeled consecutively clockwise, so that

* perimeter nodes carry the highest labels, consecutive along the
  clockwise boundary walk (seam between the last and first position);
* ports (labeled ``mesh_dim**2 + rank``) sit above all nodes, satisfying
  "ports consistently ordered and higher than the cores";
* a monotone (all-up or all-down) walk exists between any two perimeter
  positions by walking the boundary on the arc that avoids the seam —
  this is the constructive form of Property 1(c2).

Reproduction note: Property 1(c1) as literally stated — a label-monotone
*down-only* path from every port to every core — is unsatisfiable for any
total node order (a down path cannot end at a node labeled higher than
its start).  The paper itself defers intra-mesh details ("beyond the
scope of this paper", Sec. IV-C).  Our VC-reduced routing therefore
delivers port->core segments on the spare VC-0 mesh class instead (see
:mod:`repro.routing.switchless`), which the CDG checker proves safe; the
functions below quantify exactly how much of c1 a labeling satisfies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

__all__ = [
    "ring_peel_labels",
    "CGroupLabeling",
    "downonly_reachable_fraction",
]


def ring_peel_labels(dim: int) -> List[List[int]]:
    """Node labels for a ``dim x dim`` mesh, centre-out ring peeling.

    Returns ``labels[y][x]``.  The outermost ring holds the largest
    labels, consecutive clockwise starting at the top-left corner; each
    inner ring continues the same scheme with smaller labels.
    """
    if dim < 1:
        raise ValueError("dim must be >= 1")
    labels = [[-1] * dim for _ in range(dim)]
    total = dim * dim
    top, left = 0, 0
    bottom, right = dim - 1, dim - 1
    next_high = total  # labels of the current ring end at next_high - 1
    while top <= bottom and left <= right:
        ring: List[Tuple[int, int]] = []
        if top == bottom:
            ring = [(top, x) for x in range(left, right + 1)]
        elif left == right:
            ring = [(y, left) for y in range(top, bottom + 1)]
        else:
            for x in range(left, right + 1):
                ring.append((top, x))
            for y in range(top + 1, bottom + 1):
                ring.append((y, right))
            for x in range(right - 1, left - 1, -1):
                ring.append((bottom, x))
            for y in range(bottom - 1, top, -1):
                ring.append((y, left))
        base = next_high - len(ring)
        for i, (y, x) in enumerate(ring):
            labels[y][x] = base + i
        next_high = base
        top += 1
        left += 1
        bottom -= 1
        right -= 1
    assert next_high == 0
    return labels


@dataclass
class CGroupLabeling:
    """Labels of one C-group: nodes by ring peeling, ports above nodes."""

    dim: int
    #: labels[y][x] for nodes.
    node_labels: List[List[int]]
    #: port rank -> label (mesh_dim**2 + rank).
    port_labels: List[int]

    @classmethod
    def build(cls, dim: int, num_ports: int) -> "CGroupLabeling":
        node_labels = ring_peel_labels(dim)
        base = dim * dim
        return cls(dim, node_labels, [base + r for r in range(num_ports)])

    def label_at(self, y: int, x: int) -> int:
        return self.node_labels[y][x]

    def is_up_mesh_hop(self, a: Tuple[int, int], b: Tuple[int, int]) -> bool:
        """Whether the mesh hop from grid coord ``a`` to ``b`` is up."""
        return self.label_at(*a) < self.label_at(*b)


def downonly_reachable_fraction(
    labels: Sequence[Sequence[int]], start: Tuple[int, int]
) -> float:
    """Fraction of nodes reachable from ``start`` by label-decreasing hops.

    Quantifies Property 1(c1) for a given attachment point: 1.0 would mean
    the literal paper property holds from there.  With ring-peel labels
    the reachable set is large for high-label attachments but can never
    include nodes labeled above the start — see the module docstring.
    """
    dim = len(labels)
    seen = {start}
    stack = [start]
    while stack:
        y, x = stack.pop()
        here = labels[y][x]
        for dy, dx in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            ny, nx = y + dy, x + dx
            if 0 <= ny < dim and 0 <= nx < dim and (ny, nx) not in seen:
                if labels[ny][nx] < here:
                    seen.add((ny, nx))
                    stack.append((ny, nx))
    return len(seen) / (dim * dim)
