"""The paper's contribution: wafer-based switch-less Dragonfly."""

from .cgroup import CGroup, PortInfo
from .config import SwitchlessConfig
from .labeling import (
    CGroupLabeling,
    downonly_reachable_fraction,
    ring_peel_labels,
)
from .system import Channel, SwitchlessSystem, build_switchless

__all__ = [
    "CGroup",
    "PortInfo",
    "SwitchlessConfig",
    "CGroupLabeling",
    "downonly_reachable_fraction",
    "ring_peel_labels",
    "Channel",
    "SwitchlessSystem",
    "build_switchless",
]
