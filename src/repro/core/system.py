"""The full switch-less Dragonfly system builder (Fig. 3 / Fig. 6).

Construction follows the paper's two steps (Sec. IV-A): (1) label ports
and fully connect C-groups into W-groups through their local ports;
(2) fully connect W-groups through the global ports, using the same
absolute arrangement as the switch-based Dragonfly builder — W-group
``W``'s global channel ``c`` (``0 <= c < a*b*h``) goes to W-group ``c``
if ``c < W`` else ``c + 1``, via C-group ``c // h`` port ``c % h``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..topology.graph import NetworkGraph
from ..topology.mesh import DEFAULT_ENERGY
from .cgroup import CGroup, PortInfo
from .cgroup_io import IORouterCGroup
from .config import SwitchlessConfig

__all__ = ["SwitchlessSystem", "build_switchless"]


@dataclass(frozen=True)
class Channel:
    """One inter-C-group channel with its endpoint ports."""

    #: directed link id src -> dst.
    link: int
    #: exit port on the source C-group.
    src_port: PortInfo
    #: entry port on the destination C-group.
    dst_port: PortInfo


class SwitchlessSystem:
    """Built switch-less Dragonfly plus lookups for routing and traffic."""

    def __init__(self, cfg: SwitchlessConfig) -> None:
        self.cfg = cfg
        g = cfg.num_wgroups_effective
        ab = cfg.cgroups_per_wgroup
        h = cfg.num_global
        self.graph = NetworkGraph(
            f"switchless-M{cfg.mesh_dim}L{cfg.num_local}H{h}g{g}"
        )

        #: C-group object at [wgroup][index].
        self.cgroups: List[List[CGroup]] = []
        #: node id -> (wgroup, cgroup index).
        self._node_loc: Dict[int, Tuple[int, int]] = {}

        cg_cls = CGroup if cfg.cgroup_style == "mesh" else IORouterCGroup
        chip_base = 0
        for w in range(g):
            row: List[CGroup] = []
            for c in range(ab):
                cg = cg_cls(cfg, w, c, self.graph, chip_base)
                chip_base += cfg.chips_per_cgroup
                for nid in cg.nodes:
                    self._node_loc[nid] = (w, c)
                row.append(cg)
            self.cgroups.append(row)

        # ---- step 1: local all-to-all within each W-group -------------
        #: (w, i, j) -> Channel for the directed local channel i -> j.
        self._local: Dict[Tuple[int, int, int], Channel] = {}
        for w in range(g):
            for i in range(ab):
                for j in range(i + 1, ab):
                    pi = self.cgroups[w][i].local_port(j)
                    pj = self.cgroups[w][j].local_port(i)
                    fwd, rev = self.graph.add_channel(
                        pi.attach, pj.attach,
                        latency=cfg.lr_latency,
                        capacity=cfg.lr_capacity,
                        energy_pj=DEFAULT_ENERGY["local"],
                        klass="local",
                    )
                    self._local[(w, i, j)] = Channel(fwd, pi, pj)
                    self._local[(w, j, i)] = Channel(rev, pj, pi)

        # ---- step 2: global all-to-all between W-groups ---------------
        #: (w1, w2) -> Channel for the directed global channel w1 -> w2.
        self._global: Dict[Tuple[int, int], Channel] = {}
        if g > 1:
            for w in range(g):
                for c in range(ab * h):
                    peer = c if c < w else c + 1
                    if peer >= g or peer < w:
                        continue
                    ci, pi_idx = c // h, c % h
                    c_back = w if w < peer else w - 1
                    cj, pj_idx = c_back // h, c_back % h
                    pi = self.cgroups[w][ci].global_port(pi_idx)
                    pj = self.cgroups[peer][cj].global_port(pj_idx)
                    fwd, rev = self.graph.add_channel(
                        pi.attach, pj.attach,
                        latency=cfg.lr_latency,
                        capacity=cfg.lr_capacity,
                        energy_pj=DEFAULT_ENERGY["global"],
                        klass="global",
                    )
                    self._global[(w, peer)] = Channel(fwd, pi, pj)
                    self._global[(peer, w)] = Channel(rev, pj, pi)
        self.graph.validate()

    # ------------------------------------------------------------------
    @property
    def num_wgroups(self) -> int:
        return self.cfg.num_wgroups_effective

    def location_of(self, node: int) -> Tuple[int, int]:
        """(W-group, C-group index) of a node."""
        return self._node_loc[node]

    def group_of(self, node: int) -> int:
        """W-group of a node (traffic-pattern interface)."""
        return self._node_loc[node][0]

    def group_nodes(self, w: int) -> List[int]:
        """All node ids of W-group ``w``."""
        return [nid for cg in self.cgroups[w] for nid in cg.nodes]

    def cgroup(self, w: int, c: int) -> CGroup:
        return self.cgroups[w][c]

    def cgroup_of(self, node: int) -> CGroup:
        w, c = self._node_loc[node]
        return self.cgroups[w][c]

    def local_channel(self, w: int, i: int, j: int) -> Channel:
        """Directed local channel from C-group ``i`` to ``j`` in ``w``."""
        return self._local[(w, i, j)]

    def global_channel(self, w1: int, w2: int) -> Channel:
        """Directed global channel W-group ``w1`` -> ``w2``."""
        return self._global[(w1, w2)]

    def gateway_cgroup(self, w_src: int, w_dst: int) -> int:
        """C-group index in ``w_src`` owning the channel to ``w_dst``."""
        if w_src == w_dst:
            raise ValueError("no gateway within the same W-group")
        c = w_dst if w_dst < w_src else w_dst - 1
        return c // self.cfg.num_global


def build_switchless(cfg: SwitchlessConfig) -> SwitchlessSystem:
    """Construct the switch-less Dragonfly system for ``cfg``."""
    return SwitchlessSystem(cfg)
